"""Memoized bounded-exhaustive model checking of the protocol core.

``repro verify`` (PR 3) enumerates *access sequences*: every sequence of
depth ``d`` over the micro alphabet is replayed on a fresh system, which
costs ``|A|^d`` full replays even though almost all of them land in
states some other sequence already produced.  This module enumerates
*states* instead: a BFS over (canonical system state, pending access)
with memoized dedup.

* **Snapshots.** The simulator is deterministic plain-Python state, so a
  frontier node is just ``pickle.dumps(system)``.  Expanding a node
  unpickles the parent once per alphabet symbol, applies the access, and
  checks the successor -- O(1) work per transition regardless of depth,
  versus O(depth) for sequence replay.  Latency-only components (stats,
  the mesh, the DRAM model) are stripped before snapshotting and
  reattached from per-process shared instances on load (``wake``), which
  roughly halves snapshot bytes on the micro geometry.
* **Canonicalization.** A state's identity is a blake2b digest over the
  protocol-visible state only: private L2 lines in per-set LRU order,
  directory entries (with NRU bits and way order), LLC frames per set in
  LRU order with their fused/spilled entry payloads, the housing and
  garbage maps, per-block DRAM versions, the shadow oracle, and -- for
  multi-socket -- the socket-level entries and corrupted set.  Timing
  state (stats, DRAM open-page tracking, the socket directory-cache LRU,
  DirEvict bit cache) is deliberately excluded: it cannot feed back into
  protocol decisions, so states differing only in latency bookkeeping
  collapse into one, which is where the state-space reduction comes
  from.  With ``symmetry=True`` the key is additionally minimized over
  the sound core/block relabelings of :mod:`repro.verify.symmetry`, so
  whole orbits of label-symmetric states collapse too.  Soundness is
  preserved by checking every *transition* (not just every new unique
  state): an invariant violation is observed on the concrete successor
  before dedup can discard it.
* **Parallel expansion.** Each BFS level's frontier is partitioned into
  contiguous chunks across fork workers (``jobs``).  Workers expand and
  check their chunk against the frozen pre-level seen-set and emit one
  outcome record per transition; the parent then *merges* the records
  serially in partition -> node -> symbol order -- which is exactly the
  serial BFS order -- so every counter, the per-level ledger, and any
  counterexample (always the BFS-first one) are bit-identical at any
  worker count (``ModelCheckReport.identity_bytes`` is the comparison
  form; asserted for jobs 1/2/4 by tests and CI).
* **Checks.** Each transition runs the system's own ``check_invariants``
  plus the structural battery shared with the fuzz oracle
  (:mod:`repro.verify.checks`), and ZeroDEV models additionally assert a
  zero DEV count after every access -- stronger than the oracle's
  end-of-trace check.
* **Counterexamples.** A failing transition reports its access path
  from the initial state.  :meth:`ModelCheckReport.counterexample_trace`
  converts it to a :class:`~repro.verify.tracegen.FuzzTrace`, so a
  frontier counterexample replays under ``repro shrink`` and
  ``run_trace`` exactly like a fuzz divergence.

The mutation gate (:func:`mutation_gate`) runs every seeded bug from
:mod:`repro.verify.mutations` under both this checker and a fixed-budget
fuzz baseline, proving the frontier catches what sampling misses.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.coherence.exhaustive import Counterexample
from repro.common.addressing import BLOCK_SHIFT
from repro.common.errors import ConfigError
from repro.harness.parallel import parallel_map
from repro.obs.events import EventKind
from repro.verify.checks import check_step, dev_count, DivergenceError
from repro.verify.models import TRACE_CORES, ModelSpec
from repro.verify.tracegen import FuzzTrace
from repro.workloads.trace import Op

#: The micro alphabet: two cores, two ops, and three blocks chosen so
#: two of them (0 and 8) collide in one LLC set of bank 0 while the
#: third lands in bank 1 -- conflict pressure plus an independent block.
#: On two-socket models the cores map to different sockets and block
#: homes split across sockets (``home_of = block % 2``).
MICRO_CORES: Tuple[int, ...] = (0, 1)
MICRO_BLOCKS: Tuple[int, ...] = (0, 8, 1)
MICRO_OPS: Tuple[Op, ...] = (Op.READ, Op.WRITE)

#: Unique-state ceiling: a backstop against runaway growth on larger
#: alphabets, far above what the micro configs reach at depth 7.
DEFAULT_MAX_STATES = 250_000


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------
def _entry_sig(entry) -> tuple:
    return (entry.block, entry.state.value, entry.owner, entry.sharers,
            entry.location.value, entry.nru_ref)


def _l2_sig(line) -> tuple:
    return (line.block, line.state.value, line.version, line.dirty,
            line.is_code)


def _frame_sig(line) -> tuple:
    entry = line.entry
    return (line.block, line.kind.value, line.dirty, line.version,
            None if entry is None else _entry_sig(entry))


def _socket_sig(socket) -> tuple:
    """Protocol-visible state of one CMP socket (order-sensitive where
    replacement policy reads order, sorted where it does not)."""
    cores = tuple(
        tuple(tuple(_l2_sig(line) for line in hier._l2.set_lines(idx))
              for idx in range(hier._l2.geometry.sets))
        for hier in socket.cores)
    banks = tuple(
        tuple(tuple(_frame_sig(frame)
                    for frame in bank.frames_in_set(idx))
              for idx in range(bank.sets))
        for bank in socket.banks)
    directory: tuple = ()
    if socket.directory is not None:
        dir_ = socket.directory
        if dir_.unbounded:
            directory = tuple(sorted(
                (block, _entry_sig(entry))
                for block, entry in dir_._index.items()))
        else:
            # Way order carries the NRU scan order, so it is identity.
            directory = tuple(
                tuple(_entry_sig(entry) for entry in ways)
                for ways in dir_._sets)
    housing: tuple = ()
    housed = getattr(socket, "_housing", None)
    if housed is not None:
        housing = (
            tuple(sorted((block, _entry_sig(entry))
                         for block, entry in housed._housed.items())),
            tuple(sorted(housed._garbage)))
    dram = tuple(sorted(socket._dram_version.items()))
    return (cores, banks, directory, housing, dram)


def system_sig(system, multisocket: bool = False) -> tuple:
    """The raw protocol-visible signature (:func:`system_key` digests
    it; :mod:`repro.verify.symmetry` relabels it)."""
    if not multisocket:
        return (
            _socket_sig(system),
            tuple(sorted(system.shadow._latest.items())))
    return (
        tuple(_socket_sig(socket) for socket in system.sockets),
        tuple(sorted(
            (block, entry.state.value, entry.owner, entry.sharers)
            for block, entry in system._entries.items()
            if entry.sharers)),
        tuple(sorted(system._garbage)),
        tuple(sorted(system._dram_version.items())),
        tuple(sorted(system.shadow._latest.items())))


def _digest(sig: tuple) -> bytes:
    raw = pickle.dumps(sig, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.blake2b(raw, digest_size=16).digest()


def canonical_key(spec: ModelSpec, system, group=None) -> bytes:
    """16-byte digest identifying the protocol-visible state.

    Two systems with equal keys are protocol-equivalent: every future
    access sequence produces the same transitions, check results, and
    load values on both (up to a sound relabeling when a symmetry
    ``group`` is given).  Latency-only state (stats, DRAM page tracking,
    the socket dir-cache LRU and DirEvict bit cache) is excluded so
    timing-divergent interleavings collapse.
    """
    multisocket = spec.n_sockets > 1
    if not group or len(group) <= 1:
        return system_key(system, multisocket=multisocket)
    from repro.verify.symmetry import relabel_system_sig
    sig = system_sig(system, multisocket=multisocket)
    dir_unbounded = spec.config.directory.unbounded
    best = _digest(sig)
    for relabeling in group:
        if relabeling.is_identity:
            continue
        other = _digest(relabel_system_sig(sig, relabeling, multisocket,
                                           dir_unbounded))
        if other < best:
            best = other
    return best


def system_key(system, multisocket: bool = False) -> bytes:
    """:func:`canonical_key` without the spec (for callers that hold a
    built system but no :class:`ModelSpec`, e.g. the legacy explorer)."""
    return _digest(system_sig(system, multisocket=multisocket))


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class ModelCheckReport:
    """Outcome of one memoized frontier exploration.

    Accounting contract (every exit path -- clean, counterexample,
    ``max_states``, wall-clock budget -- obeys it):

    * ``unique_states == 1 + sum(level_unique)`` (the root counts even
      when it fails its own check);
    * ``depth_reached == len(level_unique)`` == the deepest level at
      which at least one transition was checked; the last entry may
      describe a partially-explored level on a capped/refuted run.
    """

    model: str
    depth: int
    alphabet_size: int
    mutation: str = ""
    depth_reached: int = 0
    #: Distinct canonical states discovered (including the root).
    unique_states: int = 0
    #: Transitions applied -- every one is invariant-checked.
    transitions: int = 0
    #: Successors discarded because their canonical state was known.
    dedup_hits: int = 0
    #: New unique states per explored BFS level (last may be partial).
    level_unique: Tuple[int, ...] = ()
    elapsed_s: float = 0.0
    #: True when max_states or the time budget stopped expansion early.
    capped: bool = False
    #: Worker processes the frontier was partitioned across.
    jobs: int = 1
    #: Orbit-minimal canonicalization over core/block relabelings.
    symmetry: bool = False
    #: Relabelings in the symmetry group (1 = plain canonicalization).
    group_size: int = 1
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    @property
    def states_checked(self) -> int:
        """States checked = transitions (every successor is checked
        before dedup, so duplicates are checked too -- soundness over
        the stats-excluding canonical key)."""
        return self.transitions

    def identity_bytes(self) -> bytes:
        """Canonical byte form for cross-worker-count comparison.

        Everything semantic -- counters, the per-level ledger, the
        counterexample path and error -- and nothing wall-clock
        (``elapsed_s``) or execution-shape (``jobs``): reports from any
        worker count of the same exploration must compare equal.
        """
        cex = None
        if self.counterexample is not None:
            cex = {
                "sequence": [[core, op.value, block] for core, op, block
                             in self.counterexample.sequence],
                "error_type": type(self.counterexample.error).__name__,
                "error": str(self.counterexample.error),
            }
        payload = {
            "model": self.model, "depth": self.depth,
            "alphabet_size": self.alphabet_size,
            "mutation": self.mutation,
            "depth_reached": self.depth_reached,
            "unique_states": self.unique_states,
            "transitions": self.transitions,
            "dedup_hits": self.dedup_hits,
            "level_unique": list(self.level_unique),
            "capped": self.capped, "symmetry": self.symmetry,
            "group_size": self.group_size, "counterexample": cex,
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def counterexample_trace(self, name: str = "") -> FuzzTrace:
        """The failing prefix as a ``repro shrink``-compatible trace."""
        if self.counterexample is None:
            raise ConfigError(
                f"model {self.model} has no counterexample to export")
        steps = tuple((core, op.value, block)
                      for core, op, block in self.counterexample.sequence)
        return FuzzTrace(name or f"modelcheck-{self.model}",
                         TRACE_CORES, steps, pattern="modelcheck")

    def summary(self) -> str:
        tag = f"{self.model}+{self.mutation}" if self.mutation \
            else self.model
        head = (f"{tag}: depth {self.depth_reached}/{self.depth}, "
                f"{self.unique_states:,} unique states, "
                f"{self.transitions:,} transitions checked, "
                f"{self.dedup_hits:,} dedup hits, "
                f"{self.elapsed_s:.2f}s")
        if self.symmetry:
            head += f" (symmetry x{self.group_size})"
        if self.jobs > 1:
            head += f" (jobs {self.jobs})"
        if self.capped:
            head += " (capped)"
        if self.counterexample is not None:
            head += f"\n  COUNTEREXAMPLE: {self.counterexample}"
        return head


# ----------------------------------------------------------------------
# The frontier engine
# ----------------------------------------------------------------------
def _portable_error(error: BaseException) -> BaseException:
    """Normalize a check failure so it is identical whether it crossed
    a process boundary or not (reports must be bit-identical at any
    worker count): pickle-roundtrip it, or wrap unpicklable errors."""
    try:
        return pickle.loads(pickle.dumps(error, pickle.HIGHEST_PROTOCOL))
    except Exception:                  # noqa: BLE001 - best-effort wrap
        return DivergenceError(f"{type(error).__name__}: {error}")


@dataclass
class _ExpandContext:
    """Per-level worker context, inherited by fork workers through the
    :data:`_EXPAND_CTX` module global (the ``parallel_map`` idiom for
    unpicklable closures)."""

    issue: Callable
    check: Callable
    canonical: Callable
    trim: Callable
    wake: Optional[Callable]
    alphabet: Tuple[tuple, ...]
    #: The frozen pre-level seen-set (workers only read it).
    seen: set
    deadline: Optional[float]
    #: Per-worker cap on emitted candidate snapshots.  Set to
    #: ``max_states - unique_states`` at level start: by the time the
    #: merge needs a worker's (budget+1)-th candidate it has already
    #: counted ``budget`` distinct new states (each earlier candidate
    #: is fresh-at-merge or duplicates one counted earlier in merge
    #: order), so the global cap fires first and truncation is exact.
    candidate_budget: int


_EXPAND_CTX: Optional[_ExpandContext] = None

#: Per-transition outcome records emitted by workers and replayed by the
#: serial merge: ("c", error) counterexample, ("d",) duplicate of a
#: pre-level or partition-local state, ("n", key, snapshot) candidate.
_REC_CEX, _REC_DUP, _REC_NEW = "c", "d", "n"


def _expand_partition(nodes: Sequence[Tuple[bytes, tuple]]):
    """Expand one contiguous frontier chunk against the pre-level
    seen-set.  Returns ``(records_per_node, timed_out)``; stops early on
    a counterexample, the candidate budget, or the deadline (the merge
    provably never consumes past a truncation point)."""
    ctx = _EXPAND_CTX
    assert ctx is not None
    local_new: set = set()
    node_records: List[List[tuple]] = []
    timed_out = False
    for snapshot, _path in nodes:
        if ctx.deadline is not None \
                and time.perf_counter() > ctx.deadline:
            timed_out = True
            break
        records: List[tuple] = []
        node_records.append(records)
        stop = False
        for symbol in ctx.alphabet:
            system = pickle.loads(snapshot)
            if ctx.wake is not None:
                ctx.wake(system)
            try:
                ctx.issue(system, symbol)
                ctx.check(system)
            except Exception as error:    # noqa: BLE001 - reported
                records.append((_REC_CEX, _portable_error(error)))
                stop = True
                break
            key = ctx.canonical(system)
            if key in ctx.seen or key in local_new:
                records.append((_REC_DUP,))
                continue
            local_new.add(key)
            ctx.trim(system)
            records.append(
                (_REC_NEW, key,
                 pickle.dumps(system, pickle.HIGHEST_PROTOCOL)))
            if len(local_new) >= ctx.candidate_budget:
                stop = True
                break
        if stop:
            break
    return node_records, timed_out


def _partition(frontier: Sequence, jobs: int) -> List[Sequence]:
    """Contiguous BFS-order chunks (concatenation == frontier order)."""
    count = max(1, min(jobs, len(frontier)))
    base, extra = divmod(len(frontier), count)
    parts, start = [], 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        if size:
            parts.append(frontier[start:start + size])
        start += size
    return parts


def _explore_frontier(report: ModelCheckReport,
                      build: Callable[[], object],
                      issue: Callable[[object, tuple], None],
                      check: Callable[[object], None],
                      canonical: Callable[[object], bytes],
                      trim: Callable[[object], None],
                      alphabet: Sequence[tuple], depth: int,
                      max_states: int, budget_s: Optional[float],
                      bus=None, jobs: int = 1,
                      wake: Optional[Callable] = None
                      ) -> ModelCheckReport:
    """Generic memoized BFS shared by the spec-level entry point and
    :meth:`ExhaustiveExplorer.explore_memoized`.

    Per level: partition the frontier across ``jobs`` fork workers,
    expand each chunk independently, then merge the per-transition
    outcome records serially in partition -> node -> symbol order (the
    serial BFS order), replaying every counter against the growing
    seen-set.  ``jobs=1`` runs the identical expand/merge code in
    process, so reports are bit-identical at any worker count.
    """
    global _EXPAND_CTX
    started = time.perf_counter()
    deadline = None if budget_s is None else started + budget_s
    alphabet = tuple(alphabet)

    def finish() -> ModelCheckReport:
        report.elapsed_s = time.perf_counter() - started
        return report

    root = build()
    try:
        check(root)
    except Exception as error:            # noqa: BLE001 - reported
        # The root still counts as explored: unique_states stays equal
        # to 1 + sum(level_unique) on this exit path too.
        report.counterexample = Counterexample((),
                                               _portable_error(error))
        report.unique_states = 1
        if bus is not None:
            bus.step = 0
            bus.emit(EventKind.MC_CEX, cause=type(error).__name__)
        return finish()
    trim(root)
    seen = {canonical(root)}
    report.unique_states = 1
    frontier: List[Tuple[bytes, tuple]] = [
        (pickle.dumps(root, pickle.HIGHEST_PROTOCOL), ())]
    level_unique: List[int] = []

    for level in range(1, depth + 1):
        if deadline is not None and time.perf_counter() > deadline:
            report.capped = True
            break
        parts = _partition(frontier, jobs)
        _EXPAND_CTX = _ExpandContext(
            issue=issue, check=check, canonical=canonical, trim=trim,
            wake=wake, alphabet=alphabet, seen=seen, deadline=deadline,
            candidate_budget=max(1, max_states - report.unique_states))
        try:
            if len(parts) == 1:
                outcomes = [_expand_partition(parts[0])]
            else:
                outcomes = parallel_map(_expand_partition, parts,
                                        jobs=jobs, require_fork=True)
        finally:
            _EXPAND_CTX = None

        # Serial merge in partition -> node -> symbol order: exactly
        # the order the serial BFS checks transitions in.
        fresh = 0
        processed = 0
        next_frontier: List[Tuple[bytes, tuple]] = []
        verdict = ""
        timed_out = any(timed for _records, timed in outcomes)
        for nodes, (node_records, _timed) in zip(parts, outcomes):
            for (_snapshot, path), records in zip(nodes, node_records):
                for symbol, record in zip(alphabet, records):
                    processed += 1
                    tag = record[0]
                    if tag == _REC_CEX:
                        report.counterexample = Counterexample(
                            path + (symbol,), record[1])
                        verdict = "cex"
                        break
                    report.transitions += 1
                    if tag == _REC_DUP:
                        report.dedup_hits += 1
                        continue
                    key, snapshot = record[1], record[2]
                    if key in seen:
                        report.dedup_hits += 1
                        continue
                    seen.add(key)
                    report.unique_states += 1
                    fresh += 1
                    if report.unique_states >= max_states:
                        verdict = "capped"
                        break
                    next_frontier.append((snapshot, path + (symbol,)))
                if verdict:
                    break
            if verdict:
                break
        if not verdict and not timed_out \
                and processed != len(frontier) * len(alphabet):
            raise RuntimeError(
                f"frontier merge consumed {processed} records for "
                f"{len(frontier)}x{len(alphabet)} transitions at level "
                f"{level} without capping -- worker truncation bug")
        if not verdict and timed_out:
            verdict = "budget"

        if bus is not None:
            bus.step = level
            bus.emit(EventKind.MC_MERGE, core=len(parts),
                     cause=f"{len(parts)}/{len(frontier)}/{processed}")
        if verdict == "budget" and processed == 0:
            # The budget expired before any level-``level`` transition
            # was checked: no ledger entry, no depth credit.
            report.capped = True
            break
        if processed:
            level_unique.append(fresh)
            report.depth_reached = level
        if verdict == "cex":
            report.level_unique = tuple(level_unique)
            if bus is not None:
                bus.emit(EventKind.MC_CEX,
                         cause=type(
                             report.counterexample.error).__name__)
            return finish()
        if verdict in ("capped", "budget"):
            report.capped = True
            report.level_unique = tuple(level_unique)
            if bus is not None:
                bus.emit(EventKind.MC_FRONTIER,
                         cause=(f"{fresh}/{report.transitions}/"
                                f"{report.dedup_hits}/capped"))
            return finish()
        if bus is not None:
            bus.emit(EventKind.MC_FRONTIER,
                     cause=(f"{fresh}/{report.transitions}/"
                            f"{report.dedup_hits}"))
        frontier = next_frontier
        if not frontier:
            break
    report.level_unique = tuple(level_unique)
    return finish()


def _spec_issue(spec: ModelSpec):
    def issue(system, symbol) -> None:
        trace_core, op, block = symbol
        socket, core = spec.map_core(trace_core)
        if spec.n_sockets == 1:
            system.access(core, op, block << BLOCK_SHIFT)
        else:
            system.access(socket, core, op, block << BLOCK_SHIFT)
    return issue


def _spec_check(spec: ModelSpec):
    def check(system) -> None:
        check_step(spec, system)
        if spec.is_zerodev:
            devs = dev_count(spec, system)
            if devs:
                raise DivergenceError(
                    f"ZeroDEV model issued {devs} DEV invalidations")
    return check


def _spec_canonical(spec: ModelSpec, group=()):
    """The canonical-key closure for one exploration.

    With a symmetry group, orbit-minimal keys are memoized by the plain
    digest: duplicate successors (the majority of transitions) skip the
    per-relabeling work entirely.  The memo is a pure-function cache, so
    sharing or splitting it across worker processes cannot change any
    key.
    """
    multisocket = spec.n_sockets > 1
    if not group or len(group) <= 1:
        def canonical(system) -> bytes:
            return system_key(system, multisocket=multisocket)
        return canonical
    from repro.verify.symmetry import relabel_system_sig
    dir_unbounded = spec.config.directory.unbounded
    relabelings = tuple(r for r in group if not r.is_identity)
    memo: Dict[bytes, bytes] = {}

    def canonical(system) -> bytes:
        sig = system_sig(system, multisocket=multisocket)
        plain = _digest(sig)
        best = memo.get(plain)
        if best is not None:
            return best
        best = plain
        for relabeling in relabelings:
            other = _digest(relabel_system_sig(
                sig, relabeling, multisocket, dir_unbounded))
            if other < best:
                best = other
        memo[plain] = best
        return best
    return canonical


def _spec_trim(spec: ModelSpec):
    from repro.verify.checks import each_socket

    def trim(system) -> None:
        # The per-core shrink journal is a kernel-sync aid that grows
        # with every invalidation; modelcheck runs the scalar access
        # path only, so dropping it keeps snapshots O(state), not
        # O(path).  Stats, the mesh, and the DRAM model are latency-only
        # (already excluded from the canonical key, so nothing here can
        # feed back into protocol decisions) -- stripping them roughly
        # halves the snapshot; ``wake`` reattaches shared instances.
        for socket in each_socket(spec, system):
            for hier in socket.cores:
                hier.shrink_log.clear()
            socket.stats = None
            socket.mesh = None
            socket.dram = None
    return trim


def _spec_wake(spec: ModelSpec):
    from repro.verify.checks import each_socket

    #: Per-process donor instances for the trimmed latency-only parts,
    #: built lazily so fork workers each populate their own copy.  The
    #: mesh and DRAM model hold the *same* stats object their socket
    #: gets, preserving the construction-time aliasing.
    donors: List[tuple] = []

    def wake(system) -> None:
        if not donors:
            template = spec.build()
            for socket in each_socket(spec, template):
                donors.append((socket.stats, socket.mesh, socket.dram))
        for socket, (stats, mesh, dram) in zip(
                each_socket(spec, system), donors):
            socket.stats = stats
            socket.mesh = mesh
            socket.dram = dram
    return wake


def build_alphabet(cores: Sequence[int] = MICRO_CORES,
                   blocks: Sequence[int] = MICRO_BLOCKS,
                   ops: Sequence[Op] = MICRO_OPS) -> List[tuple]:
    return [(core, op, block)
            for core in cores for op in ops for block in blocks]


def explore_model(spec: ModelSpec, depth: int,
                  cores: Sequence[int] = MICRO_CORES,
                  blocks: Sequence[int] = MICRO_BLOCKS,
                  ops: Sequence[Op] = MICRO_OPS,
                  symbols: Optional[Sequence[tuple]] = None,
                  mutation: str = "",
                  max_states: int = DEFAULT_MAX_STATES,
                  budget_s: Optional[float] = None,
                  bus=None, jobs: int = 1,
                  symmetry: bool = False) -> ModelCheckReport:
    """Exhaustively check ``spec`` to ``depth`` over the micro alphabet.

    ``symbols`` overrides the cores x ops x blocks cross product with an
    explicit ``(core, op, block)`` list (the mutation gate uses this to
    focus the alphabet on one bug's trigger set).  ``mutation`` arms a
    seeded bug from :mod:`repro.verify.mutations` on the root system
    (the armed flags survive snapshotting, so the whole frontier
    explores the mutant protocol).  ``jobs`` partitions each level
    across fork workers (reports stay bit-identical); ``symmetry``
    canonicalizes orbit-minimally over the sound core/block relabelings
    of :func:`repro.verify.symmetry.symmetry_group` (core relabelings
    are dropped automatically while a mutation is armed -- seeded bugs
    may be core-id-dependent).
    """
    alphabet = (list(symbols) if symbols is not None
                else build_alphabet(cores, blocks, ops))
    group: tuple = ()
    if symmetry:
        from repro.verify.symmetry import symmetry_group
        group = symmetry_group(spec, alphabet,
                               cores_symmetric=not mutation)
    report = ModelCheckReport(spec.name, depth, len(alphabet),
                              mutation=mutation, jobs=jobs,
                              symmetry=bool(symmetry),
                              group_size=max(1, len(group)))

    def build():
        system = spec.build()
        if mutation:
            from repro.verify.mutations import arm_mutation
            arm_mutation(system, mutation)
        return system

    return _explore_frontier(
        report, build, _spec_issue(spec), _spec_check(spec),
        _spec_canonical(spec, group), _spec_trim(spec),
        alphabet, depth, max_states, budget_s, bus=bus, jobs=jobs,
        wake=_spec_wake(spec))


def check_matrix(depth: int, models: Optional[Sequence[ModelSpec]] = None,
                 cores: Sequence[int] = MICRO_CORES,
                 blocks: Sequence[int] = MICRO_BLOCKS,
                 budget_s: Optional[float] = None,
                 bus=None, jobs: int = 1,
                 symmetry: bool = False) -> List[ModelCheckReport]:
    """Every model of the matrix through the frontier (ZeroDEV policy x
    replacement x LLC design, plus both 2-socket solutions)."""
    from repro.verify.models import model_matrix
    specs = list(models) if models is not None else model_matrix()
    return [explore_model(spec, depth, cores=cores, blocks=blocks,
                          budget_s=budget_s, bus=bus, jobs=jobs,
                          symmetry=symmetry)
            for spec in specs]


# ----------------------------------------------------------------------
# Frontier vs per-sequence replay (the --stats gate)
# ----------------------------------------------------------------------
@dataclass
class StatsComparison:
    """Unique canonical states reached at equal wall-clock: memoized
    frontier versus the per-sequence full replay it replaces."""

    model: str
    depth: int
    frontier: ModelCheckReport = field(repr=False)
    #: What iterative per-sequence replay got through in the frontier's
    #: wall-clock: completed sequences/accesses and the depth it was
    #: working at when time ran out.
    replay_sequences: int = 0
    replay_accesses: int = 0
    replay_depth: int = 0
    #: Unique canonical states those sequences actually visited --
    #: measured exactly, with the canonicalization cost kept off
    #: replay's clock (real replay never canonicalized anything).
    replay_unique: int = 0
    replay_elapsed_s: float = 0.0
    #: A check failure during replay, reported instead of raised: the
    #: stats gate always returns a comparison, even on a faulty model.
    replay_error: str = ""

    @property
    def ratio(self) -> float:
        return self.frontier.unique_states / max(1, self.replay_unique)

    def summary(self) -> str:
        f = self.frontier
        mode = ""
        if f.symmetry:
            mode += f", symmetry x{f.group_size}"
        if f.jobs > 1:
            mode += f", jobs {f.jobs}"
        lines = (
            f"{self.model} @ depth {self.depth} "
            f"({f.elapsed_s:.2f}s wall-clock each{mode}):\n"
            f"  frontier: {f.unique_states:,} unique canonical states "
            f"({f.transitions:,} transitions, {f.dedup_hits:,} dedup "
            f"hits, depth {f.depth_reached} reached)\n"
            f"  replay:   {self.replay_unique:,} unique states "
            f"({self.replay_sequences:,} sequences replayed, working at "
            f"depth {self.replay_depth})\n"
            f"  frontier checks {self.ratio:.1f}x more unique states "
            f"at equal wall-clock")
        if self.replay_error:
            lines += f"\n  replay check failure: {self.replay_error}"
        return lines


def frontier_vs_replay(spec: ModelSpec, depth: int,
                       cores: Sequence[int] = MICRO_CORES,
                       blocks: Sequence[int] = MICRO_BLOCKS,
                       max_states: int = DEFAULT_MAX_STATES,
                       jobs: int = 1, symmetry: bool = False
                       ) -> StatsComparison:
    """Run the frontier to ``depth``, then give per-sequence replay the
    same wall-clock and count what it covers.

    The replay loop is the work ``ExhaustiveExplorer.explore`` used to
    do -- fresh system per sequence, one access plus one invariant check
    per step, iterative deepening so shallow depths complete first.  Its
    unique-state count is measured exactly by canonicalizing every state
    it passes through (with the same symmetry group as the frontier, so
    the counts compare like for like), but that canonicalization cost is
    subtracted from replay's clock (real replay never did any), which
    errs in replay's favour.  The wall-clock budget is enforced per
    *access*, and a check failure during replay is reported through
    ``replay_error`` instead of escaping the gate.
    """
    frontier = explore_model(spec, depth, cores=cores, blocks=blocks,
                             max_states=max_states, jobs=jobs,
                             symmetry=symmetry)
    budget = frontier.elapsed_s
    alphabet = build_alphabet(cores, blocks)
    issue = _spec_issue(spec)
    check = _spec_check(spec)
    group: tuple = ()
    if symmetry:
        from repro.verify.symmetry import symmetry_group
        group = symmetry_group(spec, alphabet)
    canonical = _spec_canonical(spec, group)
    comparison = StatsComparison(spec.name, depth, frontier)

    seen = {canonical(spec.build())}
    canon_overhead = 0.0
    started = time.perf_counter()
    halted = False
    for d in itertools.count(1):
        comparison.replay_depth = d
        for sequence in itertools.product(alphabet, repeat=d):
            system = spec.build()
            completed = True
            for symbol in sequence:
                if time.perf_counter() - started - canon_overhead \
                        > budget:
                    halted, completed = True, False
                    break
                try:
                    issue(system, symbol)
                    check(system)
                except Exception as error:  # noqa: BLE001 - reported
                    comparison.replay_error = (
                        f"{type(error).__name__}: {error}")
                    halted, completed = True, False
                    break
                comparison.replay_accesses += 1
                canon_started = time.perf_counter()
                seen.add(canonical(system))
                canon_overhead += time.perf_counter() - canon_started
            if completed:
                comparison.replay_sequences += 1
            if halted:
                break
        if halted:
            break
    comparison.replay_elapsed_s = (
        time.perf_counter() - started - canon_overhead)
    comparison.replay_unique = len(seen)
    return comparison


# ----------------------------------------------------------------------
# The mutation gate
# ----------------------------------------------------------------------
@dataclass
class MutationVerdict:
    """One seeded bug under both checkers."""

    mutation: str
    model: str
    caught_by_modelcheck: bool
    catch_depth: int = -1
    modelcheck_error: str = ""
    fuzz_caught: bool = False
    fuzz_budget: int = 0
    fuzz_seed: int = 0
    fuzz_steps: int = 0

    def summary(self) -> str:
        mc = (f"caught at depth {self.catch_depth} "
              f"({self.modelcheck_error})"
              if self.caught_by_modelcheck else "MISSED")
        fz = "caught" if self.fuzz_caught else "missed"
        return (f"{self.mutation} on {self.model}: modelcheck {mc}; "
                f"fuzz (seed {self.fuzz_seed}, budget "
                f"{self.fuzz_budget}, steps {self.fuzz_steps}) {fz}")


def mutation_gate(names: Optional[Sequence[str]] = None,
                  fuzz_budget: int = 4, fuzz_seed: int = 7,
                  fuzz_steps: int = 12,
                  max_depth: Optional[int] = None,
                  run_fuzz: bool = True, jobs: int = 1,
                  symmetry: bool = False) -> List[MutationVerdict]:
    """Run every seeded mutation under modelcheck and the fuzz baseline.

    The fuzz baseline is a real :func:`run_campaign` pass -- fixed seed,
    fixed budget, the mutant differentially anchored against the clean
    ``baseline-1x`` model, shrinking disabled -- i.e. exactly the
    fuzz-smoke discipline, pointed at a known bug.  The defaults pin
    short traces (``fuzz_steps=12``): long conflict traces saturate the
    micro geometry and stumble into almost any seam, which would hide
    the coverage gap the gate exists to demonstrate.  The gate the tests
    and CI assert: every mutation caught by modelcheck, at least one
    missed by fuzz (and, with ``symmetry=True``, still every mutation
    caught under orbit-minimal canonicalization).
    """
    from repro.verify.mutations import (MUTATIONS, mutant_spec,
                                        reference_spec)
    picked = list(names) if names else sorted(MUTATIONS)
    verdicts: List[MutationVerdict] = []
    for name in picked:
        mutation = MUTATIONS.get(name)
        if mutation is None:
            known = ", ".join(sorted(MUTATIONS))
            raise ConfigError(
                f"unknown mutation {name!r}; known mutations: {known}")
        spec = reference_spec(mutation.reference_model)
        verdict = MutationVerdict(name, spec.name,
                                  caught_by_modelcheck=False,
                                  fuzz_budget=fuzz_budget,
                                  fuzz_seed=fuzz_seed,
                                  fuzz_steps=fuzz_steps)
        depth_cap = max_depth or mutation.catch_depth
        report = explore_model(spec, depth_cap, blocks=mutation.blocks,
                               symbols=mutation.symbols or None,
                               mutation=name, jobs=jobs,
                               symmetry=symmetry)
        if not report.ok:
            verdict.caught_by_modelcheck = True
            verdict.catch_depth = len(report.counterexample.sequence)
            verdict.modelcheck_error = type(
                report.counterexample.error).__name__
        if run_fuzz:
            from repro.verify.differential import run_campaign
            from repro.verify.models import model_matrix
            anchor = model_matrix()[0]
            fuzz = run_campaign(seed=fuzz_seed, budget=fuzz_budget,
                                models=[anchor, mutant_spec(spec, name)],
                                steps_per_trace=fuzz_steps, shrink=False)
            verdict.fuzz_caught = not fuzz.ok
        verdicts.append(verdict)
    return verdicts
