"""Delta-debugging reduction of failing traces to minimal reproducers.

A raw fuzz divergence is dozens of accesses of noise around a handful
that matter. :func:`shrink_trace` applies ddmin (Zeller & Hildebrandt,
TSE 2002) over the access list: repeatedly re-run the model on subsets
and keep the smallest subset that still fails *with the same error
type*. Because the simulator is deterministic, one re-run per candidate
is a sound oracle.

:func:`emit_regression` then freezes the minimal trace as a replayable
``.npz`` plus a generated pytest module asserting the run is clean --
failing until the underlying bug is fixed, guarding it forever after.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Tuple

from repro.verify.models import ModelSpec
from repro.verify.oracle import Outcome, run_trace
from repro.verify.tracegen import FuzzTrace


def _fails_like(spec: ModelSpec, candidate: FuzzTrace,
                reference: Outcome, check_every: int,
                fault) -> Optional[Outcome]:
    outcome = run_trace(spec, candidate, check_every=check_every,
                        fault=fault)
    if outcome.ok:
        return None
    if reference.error_type and \
            outcome.error_type != reference.error_type:
        # A different bug: still interesting, but chasing it here would
        # let ddmin wander between failure modes and converge on
        # neither. Shrink one bug at a time.
        return None
    return outcome


def shrink_trace(spec: ModelSpec, trace: FuzzTrace,
                 reference: Optional[Outcome] = None,
                 check_every: int = 1,
                 fault=None) -> Tuple[FuzzTrace, Outcome]:
    """ddmin ``trace`` to a minimal sequence still failing on ``spec``.

    Returns the reduced trace and its failing outcome. ``reference``
    (the original failure) pins the error type being chased; omitted, it
    is obtained by one extra run. Raises ``ValueError`` if the full
    trace does not fail to begin with.
    """
    if reference is None or reference.ok:
        reference = run_trace(spec, trace, check_every=check_every,
                              fault=fault)
        if reference.ok:
            raise ValueError(
                f"trace {trace.name} does not fail on {spec.name}; "
                "nothing to shrink")

    steps = list(trace.steps)
    # The failure surfaced at failing_step; everything after it is dead
    # weight, so truncate before the quadratic phase.
    if 0 <= reference.failing_step < len(steps) - 1 and \
            reference.phase == "trace":
        truncated = trace.with_steps(steps[:reference.failing_step + 1])
        outcome = _fails_like(spec, truncated, reference, check_every,
                              fault)
        if outcome is not None:
            steps = list(truncated.steps)
            reference = outcome

    best = reference
    granularity = 2
    while len(steps) >= 2:
        chunk = max(1, len(steps) // granularity)
        reduced = False
        start = 0
        while start < len(steps):
            candidate_steps = steps[:start] + steps[start + chunk:]
            if not candidate_steps:
                start += chunk
                continue
            candidate = trace.with_steps(candidate_steps)
            outcome = _fails_like(spec, candidate, reference,
                                  check_every, fault)
            if outcome is not None:
                steps = candidate_steps
                best = outcome
                granularity = max(granularity - 1, 2)
                reduced = True
                # Restart the sweep on the smaller list.
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(steps):
                break
            granularity = min(len(steps), granularity * 2)
    return trace.with_steps(steps), best


_NAME_RE = re.compile(r"[^0-9a-zA-Z]+")


def _safe(name: str) -> str:
    return _NAME_RE.sub("_", name).strip("_").lower()


REGRESSION_TEMPLATE = '''\
"""Auto-generated fuzz regression ({model} x {trace}).

Minimal reproducer shrunk from a differential-fuzzing divergence:
    {error_type} at step {failing_step} ({phase}): {error}

The assertion holds once the underlying bug is fixed; the trace next to
this file replays the exact failing access sequence.
"""

from pathlib import Path

from repro.verify import FuzzTrace, model_by_name, run_trace

TRACE_PATH = Path(__file__).with_name("{npz_name}")


def test_{test_name}():
    trace = FuzzTrace.load(TRACE_PATH)
    outcome = run_trace(model_by_name("{model}"), trace, check_every=1)
    assert outcome.ok, str(outcome)
'''


def emit_regression(spec: ModelSpec, trace: FuzzTrace, outcome: Outcome,
                    out_dir) -> Tuple[Path, Path]:
    """Write ``trace`` and its pytest stub under ``out_dir``.

    Returns ``(npz_path, test_path)``. The stub imports only public
    ``repro.verify`` API, so it can be dropped into ``tests/`` as-is.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = _safe(f"{spec.name}_{trace.name}")
    npz_path = out_dir / f"{stem}.npz"
    trace.save(npz_path)
    test_path = out_dir / f"test_regression_{stem}.py"
    test_path.write_text(REGRESSION_TEMPLATE.format(
        model=spec.name, trace=trace.name,
        error_type=outcome.error_type or "failure",
        failing_step=outcome.failing_step, phase=outcome.phase,
        error=outcome.error.replace("\\", "\\\\").replace('"', "'"),
        npz_name=npz_path.name, test_name=_safe(stem)))
    return npz_path, test_path
