"""Symmetry reduction for the memoized model checker.

The micro alphabet treats some core and block identities as pure labels:
swapping two cores (or two index-congruent blocks) everywhere in an
access sequence yields a system state that is the same state up to that
relabeling.  On top of the latency-state canonicalization of
:mod:`repro.verify.modelcheck`, this module collapses each *orbit* of
such relabelings onto one canonical key: ``canonical_key`` becomes the
minimum digest over the relabeled signatures, so symmetric states dedup
against each other and the frontier explores one representative per
orbit.

Soundness (the full argument lives in PROTOCOL.md §6):

* **Block permutations** must preserve every index function.  All
  structures index with low-order block bits (``set_index``,
  ``AddressMapper.bank_of``/``set_of``, ``home_of = block % n_sockets``),
  so any permutation within a congruence class mod ``2**k`` -- where
  ``k`` covers the widest index (LLC bank+set bits, L2/L1/directory set
  bits, socket-home bits) -- maps every block to the same bank, set,
  directory slice, and home socket.  Non-power-of-two structures defeat
  the congruence argument, so they degrade to the trivial group.
* **Core permutations** must be automorphisms of the transition
  relation.  The only core-id-ordered decisions in the clean protocols
  are the lowest-id sharer election (all S copies are version-equal and
  clean, so the elected copy's payload is identical) and sharer
  invalidation order (per-core effects on disjoint hierarchies
  commute) -- both latency-only.  Seeded *mutations* may be
  id-dependent (``dev-leak-sharer`` drops the lowest-id sharer), so an
  armed mutant keeps block permutations but drops core permutations
  (``cores_symmetric=False``).
* **SecDir and MgD** organize directory state by region/way classes
  whose grouping is not a pure low-bit function of the block id, so
  both degrade to the trivial group rather than risk an unsound merge.
* **Subsets stay sound.**  Two states share an orbit-minimal key only
  if some ``pi2^-1 . pi1`` drawn from the *full* congruence group
  relates them, so capping or filtering the enumerated group (e.g. the
  alphabet-preservation check, ``max_size``) only reduces *how much*
  collapses, never merges inequivalent states.

The drift guard is ``tests/test_symmetry.py``: an equivariance property
(``sig(run(pi(sequence))) == relabel(sig(run(sequence)), pi)``) plus a
differential test that symmetry-on and symmetry-off refute all five
seeded mutations identically.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import Protocol
from repro.verify.models import ModelSpec

#: Enumerated relabelings are capped here (deterministically, after
#: sorting): a subset of a sound group is still sound, and the micro
#: alphabets stay far below this.
DEFAULT_MAX_GROUP = 64


class Relabeling:
    """One core/block relabeling, applied at the signature level.

    ``core_map[old] == new`` over the socket-local core ids;
    ``core_order[new] == old`` is its inverse (used to reorder the
    per-core signature tuple); ``sharer_map`` relabels a sharer bitmask
    in one table lookup.  Blocks outside ``block_map`` map to
    themselves (only alphabet blocks ever materialize in a state).
    """

    __slots__ = ("core_map", "core_order", "sharer_map", "_blocks",
                 "is_identity")

    def __init__(self, core_map: Tuple[int, ...],
                 block_map: Dict[int, int]) -> None:
        self.core_map = core_map
        self.core_order = tuple(core_map.index(i)
                                for i in range(len(core_map)))
        table = []
        for mask in range(1 << len(core_map)):
            relabeled = 0
            for core in range(len(core_map)):
                if mask >> core & 1:
                    relabeled |= 1 << core_map[core]
            table.append(relabeled)
        self.sharer_map = tuple(table)
        self._blocks = dict(block_map)
        self.is_identity = (
            core_map == tuple(range(len(core_map)))
            and all(old == new for old, new in block_map.items()))

    def block(self, block: int) -> int:
        return self._blocks.get(block, block)

    def core(self, core: int) -> int:
        return self.core_map[core] if core < len(self.core_map) else core

    def symbol(self, symbol: tuple) -> tuple:
        """Relabel one ``(core, op, block)`` alphabet symbol."""
        core, op, block = symbol
        return (self.core(core), op, self.block(block))

    def sort_key(self) -> tuple:
        return (self.core_map, tuple(sorted(self._blocks.items())))

    def describe(self) -> str:
        cores = " ".join(f"{old}>{new}"
                         for old, new in enumerate(self.core_map)
                         if old != new)
        blocks = " ".join(f"{old}>{new}"
                          for old, new in sorted(self._blocks.items())
                          if old != new)
        return (f"cores[{cores or 'id'}] blocks[{blocks or 'id'}]"
                if not self.is_identity else "identity")


def _index_bits(sets: int) -> Optional[int]:
    """log2 of a power-of-two set count; None defeats the congruence."""
    if sets < 1 or sets & (sets - 1):
        return None
    return sets.bit_length() - 1


def placement_modulus(spec: ModelSpec) -> Optional[int]:
    """``2**k`` such that blocks congruent mod it share every placement:
    L1/L2 set, LLC bank and set, directory slice set, and home socket.
    None when any structure's indexing is not a power-of-two low-bit
    mask (no sound congruence class exists)."""
    cfg = spec.config
    widths: List[Optional[int]] = [
        _index_bits(cfg.l1i.sets), _index_bits(cfg.l1d.sets),
        _index_bits(cfg.l2.sets), _index_bits(spec.n_sockets)]
    bank_bits = _index_bits(cfg.llc_banks)
    set_bits = _index_bits(cfg.llc.sets // cfg.llc_banks)
    if bank_bits is None or set_bits is None:
        return None
    widths.append(bank_bits + set_bits)
    directory = cfg.directory
    if directory.present and not directory.unbounded:
        entries = directory.entries_for(cfg.aggregate_l2_blocks)
        widths.append(_index_bits(max(1, entries // directory.ways)))
    if any(width is None for width in widths):
        return None
    return 1 << max(width for width in widths if width is not None)


def symmetry_group(spec: ModelSpec, alphabet: Sequence[tuple],
                   cores_symmetric: bool = True,
                   max_size: int = DEFAULT_MAX_GROUP
                   ) -> Tuple[Relabeling, ...]:
    """Every sound relabeling of ``spec`` that maps ``alphabet`` onto
    itself: identity first, deterministic order, capped at ``max_size``.

    ``cores_symmetric=False`` restricts to block permutations (used
    whenever a seeded mutation is armed -- mutations may be
    core-id-dependent, see the module docstring)."""
    n_cores = spec.config.n_cores
    identity_cores = tuple(range(n_cores))
    identity = Relabeling(identity_cores, {})
    if spec.config.protocol in (Protocol.SECDIR, Protocol.MGD):
        return (identity,)
    modulus = placement_modulus(spec)
    if modulus is None:
        return (identity,)

    symbols = set(map(tuple, alphabet))
    blocks = sorted({block for _core, _op, block in symbols})
    cores = sorted({core for core, _op, _block in symbols})

    # Block permutations: the direct product of permutations within each
    # placement-congruence class.
    classes: Dict[int, List[int]] = {}
    for block in blocks:
        classes.setdefault(block % modulus, []).append(block)
    block_perms: List[Dict[int, int]] = [{}]
    for members in classes.values():
        extended = []
        for base in block_perms:
            for image in itertools.permutations(members):
                perm = dict(base)
                perm.update(zip(members, image))
                extended.append(perm)
        block_perms = extended

    # Core permutations: sound only single-socket on a clean protocol
    # (multi-socket trace-core swaps move blocks between home sockets,
    # which the block congruence already forbids re-homing).
    if cores_symmetric and spec.n_sockets == 1:
        core_perms = [dict(zip(cores, image))
                      for image in itertools.permutations(cores)]
    else:
        core_perms = [{}]

    group: List[Relabeling] = []
    for core_perm in core_perms:
        core_map = tuple(core_perm.get(core, core)
                         for core in range(n_cores))
        for block_perm in block_perms:
            relabeled = {(core_perm.get(core, core), op,
                          block_perm.get(block, block))
                         for core, op, block in symbols}
            if relabeled != symbols:
                continue
            group.append(Relabeling(core_map, block_perm))
    group.sort(key=Relabeling.sort_key)
    assert group and group[0].is_identity
    return tuple(group[:max_size])


# ----------------------------------------------------------------------
# Signature relabeling (mirrors modelcheck.system_sig's structure)
# ----------------------------------------------------------------------
def _r_entry(entry: tuple, r: Relabeling) -> tuple:
    block, state, owner, sharers, location, nru_ref = entry
    return (r.block(block), state,
            None if owner is None else r.core_map[owner],
            r.sharer_map[sharers], location, nru_ref)


def _r_l2(line: tuple, r: Relabeling) -> tuple:
    block, state, version, dirty, is_code = line
    return (r.block(block), state, version, dirty, is_code)


def _r_frame(frame: tuple, r: Relabeling) -> tuple:
    block, kind, dirty, version, entry = frame
    return (r.block(block), kind, dirty, version,
            None if entry is None else _r_entry(entry, r))


def _r_pairs(pairs: tuple, r: Relabeling) -> tuple:
    """Relabel and re-sort a ``(block, payload)`` mapping signature."""
    return tuple(sorted((r.block(block), payload)
                        for block, payload in pairs))


def relabel_socket_sig(sig: tuple, r: Relabeling,
                       dir_unbounded: bool) -> tuple:
    """Relabel one socket signature.

    Congruence guarantees a relabeled block keeps its set/bank/slice, so
    order-sensitive components (per-set LRU order, directory way order)
    relabel *in place*; sorted components re-sort after relabeling."""
    cores, banks, directory, housing, dram = sig
    cores = tuple(
        tuple(tuple(_r_l2(line, r) for line in lru_set)
              for lru_set in cores[old])
        for old in r.core_order)
    banks = tuple(
        tuple(tuple(_r_frame(frame, r) for frame in lru_set)
              for lru_set in bank)
        for bank in banks)
    if directory:
        if dir_unbounded:
            directory = tuple(sorted(
                (r.block(block), _r_entry(entry, r))
                for block, entry in directory))
        else:
            directory = tuple(
                tuple(_r_entry(entry, r) for entry in ways)
                for ways in directory)
    if housing:
        housed, garbage = housing
        housing = (
            tuple(sorted((r.block(block), _r_entry(entry, r))
                         for block, entry in housed)),
            tuple(sorted(r.block(block) for block in garbage)))
    return (cores, banks, directory, housing, _r_pairs(dram, r))


def relabel_system_sig(sig: tuple, r: Relabeling, multisocket: bool,
                       dir_unbounded: bool) -> tuple:
    """Relabel a full system signature (see ``modelcheck.system_sig``)."""
    if not multisocket:
        socket, shadow = sig
        return (relabel_socket_sig(socket, r, dir_unbounded),
                _r_pairs(shadow, r))
    # Multi-socket: the socket-level entries carry *socket* ids as
    # owner/sharers (untouched -- multi-socket groups have identity
    # core maps) and blocks stay on their home socket by congruence.
    sockets, entries, garbage, dram, shadow = sig
    return (
        tuple(relabel_socket_sig(socket, r, dir_unbounded)
              for socket in sockets),
        tuple(sorted((r.block(block), state, owner, sharers)
                     for block, state, owner, sharers in entries)),
        tuple(sorted(r.block(block) for block in garbage)),
        _r_pairs(dram, r),
        _r_pairs(shadow, r))
