"""Protocol fault injection: break the machinery, demand loud failure.

Each fault models a "what if this message were lost/duplicated" question
about the ZeroDEV flows the paper introduces. The verification contract
is *no silent divergence*: an injected fault must either be detected (a
typed :class:`~repro.common.errors.ProtocolInvariantError` /
:class:`~repro.verify.oracle.DivergenceError` from an invariant check,
the shadow oracle, or the read-back pass) or be provably harmless
(graceful degradation that only costs latency/accounting). A fault that
completes a campaign with ``ok`` outcomes and no firing is a coverage
failure, reported as such.

Faults are armed on a *built system instance* by monkey-patching the
seam method the lost/duplicated message would traverse; the patch fires
on the Nth traversal and is inert afterwards, so a single run carries
exactly one injected event.

* ``DROP_WB_DE`` -- the Nth entry writeback to home memory vanishes:
  the live entry is gone from every structure while its sharers remain
  privately cached ("privately cached but untracked" at the next
  invariant check).
* ``DUP_WB_DE`` -- the Nth WB_DE is delivered twice: the second
  delivery finds the home block already housing an entry and raises.
* ``DROP_GET_DE`` -- the Nth GET_DE read of a memory-housed entry is
  lost: the eviction notice finds no entry anywhere and the notice
  handler raises.
* ``FORCE_DENF_NACK`` -- a corrupted-read forward is NACKed even though
  the target socket holds the entry: the home re-extracts the segment
  from memory. Pure latency; the run must stay correct (the graceful-
  degradation case).
* ``DROP_UPDATE`` / ``DUP_UPDATE`` -- the hybrid model's Nth UPDATE
  push to a sharer is lost (a stale readable S copy survives: only the
  per-step update-coherence check can see it) or delivered twice
  (idempotent, graceful).
* ``LLC_CONFLICT_STORM`` -- on the Nth LLC eviction of the DLS model,
  every other frame of the victim's set is conflict-evicted through the
  real handler: a worst-case inclusion storm that must stay correct.

:func:`corrupt_cache_files` is the storage-layer sibling: it flips bytes
in persisted result-cache pickles so tests can assert the cache treats
damage as a miss and recomputes.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from pathlib import Path
from typing import List

from repro.caches.block import LineKind
from repro.common.config import Protocol
from repro.common.errors import ConfigError


class FaultKind(enum.Enum):
    DROP_WB_DE = "drop-wb-de"
    DUP_WB_DE = "dup-wb-de"
    DROP_GET_DE = "drop-get-de"
    FORCE_DENF_NACK = "force-denf-nack"
    # Contender-model faults (repro.baselines.dls / .hybrid).
    DROP_UPDATE = "drop-update"
    DUP_UPDATE = "dup-update"
    LLC_CONFLICT_STORM = "llc-conflict-storm"


#: Faults whose only legal outcome is a typed detection (non-ok run).
DETECTABLE = (FaultKind.DROP_WB_DE, FaultKind.DUP_WB_DE,
              FaultKind.DROP_GET_DE, FaultKind.DROP_UPDATE)
#: Faults the system must absorb: the run stays correct end to end.
GRACEFUL = (FaultKind.FORCE_DENF_NACK, FaultKind.DUP_UPDATE,
            FaultKind.LLC_CONFLICT_STORM)


@dataclass(frozen=True)
class FaultPlan:
    """Inject ``kind`` on the Nth traversal of its seam (1-based)."""

    kind: FaultKind
    at: int = 1

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ConfigError("fault occurrence index must be >= 1")


class ArmedFault:
    """Live injection state; ``fired`` reports whether the seam was
    reached at all (a campaign where it never fires proves nothing)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.seen = 0
        self.fired = 0

    def _due(self) -> bool:
        self.seen += 1
        if self.seen == self.plan.at:
            self.fired += 1
            return True
        return False


def _zerodev_sockets(system) -> List:
    sockets = getattr(system, "sockets", [system])
    return [s for s in sockets if hasattr(s, "_housing")]


def arm_fault(system, plan: FaultPlan) -> ArmedFault:
    """Patch ``plan``'s seam on ``system`` (single- or multi-socket).

    Raises :class:`ConfigError` when the model has no such seam (e.g.
    WB_DE faults on a baseline model, DENF faults on one socket).
    """
    armed = ArmedFault(plan)
    if plan.kind is FaultKind.FORCE_DENF_NACK:
        _arm_force_denf(system, armed)
        return armed
    if plan.kind in (FaultKind.DROP_UPDATE, FaultKind.DUP_UPDATE):
        if not hasattr(system, "_deliver_update"):
            raise ConfigError(
                f"fault {plan.kind.value} needs the hybrid "
                "update/invalidate model")
        _arm_update(system, armed)
        return armed
    if plan.kind is FaultKind.LLC_CONFLICT_STORM:
        if getattr(system, "PROTOCOL", None) is not Protocol.DLS:
            raise ConfigError(
                "fault llc-conflict-storm needs the DLS model (the "
                "storm targets entry-bearing LLC lines)")
        _arm_llc_storm(system, armed)
        return armed
    sockets = _zerodev_sockets(system)
    if not sockets:
        raise ConfigError(
            f"fault {plan.kind.value} needs a ZeroDEV socket; "
            "model has none")
    for socket in sockets:
        if plan.kind in (FaultKind.DROP_WB_DE, FaultKind.DUP_WB_DE):
            _arm_wb_de(socket, armed)
        else:
            _arm_drop_get_de(socket, armed)
    return armed


def _arm_wb_de(socket, armed: ArmedFault) -> None:
    original = socket._writeback_entry_to_memory  # noqa: SLF001

    def patched(entry):
        if not armed._due():
            return original(entry)
        if armed.plan.kind is FaultKind.DROP_WB_DE:
            return None            # the WB_DE message is lost in flight
        original(entry)            # delivered ...
        return original(entry)     # ... and then delivered again

    socket._writeback_entry_to_memory = patched  # noqa: SLF001


def _arm_drop_get_de(socket, armed: ArmedFault) -> None:
    original = socket._find_entry_for_notice  # noqa: SLF001
    housing = socket._housing                 # noqa: SLF001

    def _on_chip(block) -> bool:
        # Recency-neutral probe (the real lookup touches LRU state and
        # would perturb the run even when the fault does not fire).
        if socket.directory is not None and \
                socket.directory.peek(block) is not None:
            return True
        bank = socket.bank_of(block)
        if bank.peek_spill(block) is not None:
            return True
        data = bank.peek_data(block)
        return data is not None and data.kind is LineKind.FUSED

    def patched(block, bank):
        # Only a *memory-housed* lookup corresponds to a GET_DE message
        # that could be dropped; on-chip lookups traverse no wire here.
        would_get_de = (not _on_chip(block)
                        and housing.peek(block) is not None)
        if would_get_de and armed._due():
            return None
        return original(block, bank)

    socket._find_entry_for_notice = patched  # noqa: SLF001


def _arm_update(system, armed: ArmedFault) -> None:
    """Drop or duplicate the Nth UPDATE push of the hybrid model.

    A dropped update leaves a sharer holding a stale-but-readable S
    copy -- a read *hit* would silently consume it, so only the
    per-step update-coherence check (``check_hybrid``) can catch it: the
    quintessential no-silent-divergence case.  A duplicated update is
    idempotent (same version written twice) and must degrade gracefully.
    """
    original = system._deliver_update  # noqa: SLF001

    def patched(writer, sharer, block, version, bank):
        if not armed._due():
            return original(writer, sharer, block, version, bank)
        if armed.plan.kind is FaultKind.DROP_UPDATE:
            # The UPDATE message is lost in flight: the sharer keeps its
            # stale copy and the writer never sees the missing ack.
            return 0
        original(writer, sharer, block, version, bank)
        return original(writer, sharer, block, version, bank)

    system._deliver_update = patched  # noqa: SLF001


def _arm_llc_storm(system, armed: ArmedFault) -> None:
    """On the Nth LLC eviction, conflict-storm the victim's whole set.

    DLS keeps coherence state on LLC lines, so an adversarial burst of
    conflict evictions is its worst case: every entry-bearing line in
    the set dies and must back-invalidate its sharers.  Each extra
    victim goes through the real eviction handler, so the run must stay
    correct -- the cost is inclusion invalidations, not correctness.
    """
    original = system._handle_llc_victim  # noqa: SLF001

    def patched(bank, victim):
        original(bank, victim)
        if not armed._due():
            return
        set_idx = bank.set_of(victim.block)
        # The MRU frame is the fill that displaced ``victim`` -- the
        # block of the in-flight transaction (hardware holds it busy),
        # so the storm takes every *other* frame of the set.
        for line in list(bank.frames_in_set(set_idx))[:-1]:
            bank.remove(line)
            original(bank, line)

    system._handle_llc_victim = patched  # noqa: SLF001


def _arm_force_denf(system, armed: ArmedFault) -> None:
    sockets = getattr(system, "sockets", None)
    original = getattr(system, "_forward_corrupted_read", None)
    if sockets is None or original is None:
        raise ConfigError(
            "fault force-denf-nack needs a multi-socket model")

    def patched(socket, block, entry, home_id):
        if not armed._due():
            return original(socket, block, entry, home_id)
        # Pretend every socket lost its on-chip entry for the duration
        # of this forward: the target must DENF_NACK and the home must
        # re-extract the segment from memory (Figure 15, steps 7-10).
        saved = [(s, s._lookup_in_socket) for s in sockets]  # noqa: SLF001
        try:
            for sock, lookup in saved:
                sock._lookup_in_socket = (                   # noqa: SLF001
                    lambda b, _orig=lookup: None)
            return original(socket, block, entry, home_id)
        finally:
            for sock, lookup in saved:
                sock._lookup_in_socket = lookup              # noqa: SLF001

    system._forward_corrupted_read = patched  # noqa: SLF001


def corrupt_cache_files(directory, seed: int = 0) -> int:
    """Flip one byte in every ``.pkl`` under ``directory``.

    Returns the number of files damaged. The result cache must treat
    every damaged entry as a miss (recompute), never crash and never
    serve garbage stats.
    """
    rng = random.Random(seed)
    damaged = 0
    for path in sorted(Path(directory).glob("*.pkl")):
        data = bytearray(path.read_bytes())
        if not data:
            continue
        index = rng.randrange(len(data))
        data[index] ^= 0xFF
        path.write_bytes(bytes(data))
        damaged += 1
    return damaged
