"""The differential model matrix.

Every model runs the *same* trace on the *same* micro geometry (two ways
everywhere, a 16-block LLC over two banks) so that conflict pressure --
the regime where WB_DE/GET_DE, spLRU/dataLRU ordering, and fuse/spill
transitions actually fire -- is reached within a few dozen accesses.

The matrix pits the paper's designs against each other:

* the 1x sparse-directory baseline (the ground truth MESI CMP),
* an *undersized* baseline (DEV storms -- values must still be right),
* SecDir and MgD (the related-work directory organisations),
* ZeroDEV under all three directory-caching policies, both replacement
  policies, and all three LLC designs,
* two-socket compositions (baseline and ZeroDEV, both directory-cache
  eviction solutions) where WB_DE escalates to the socket level and the
  corrupted-block machinery engages.

The equivalence claim checked downstream is behavioural, not timing:
identical load values (via the shared shadow oracle) and identical final
memory, for every model, on every trace.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol, SystemConfig)

#: Cores the fuzz traces address; models with two sockets split them.
TRACE_CORES = 4


def micro_config(**overrides) -> SystemConfig:
    """The shared micro geometry (mirrors tests/test_exhaustive.py)."""
    base = dict(
        n_cores=TRACE_CORES,
        l1i=CacheGeometry(256, 2),      # 4 blocks
        l1d=CacheGeometry(256, 2),
        l2=CacheGeometry(512, 2),       # 8 blocks
        llc=CacheGeometry(1024, 2),     # 16 blocks over 2 banks
        llc_banks=2,
        directory=DirectoryConfig(ratio=1.0),
    )
    base.update(overrides)
    return SystemConfig(**base)


def zerodev_config(**overrides) -> SystemConfig:
    defaults = dict(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU,
    )
    defaults.update(overrides)
    return micro_config(**defaults)


@dataclass(frozen=True)
class ModelSpec:
    """One model under differential test."""

    name: str
    config: SystemConfig
    n_sockets: int = 1
    #: Socket-level directory-cache capacity (multi-socket only); kept
    #: tiny so socket entries get evicted and Section III-D5 solutions
    #: actually run.
    dir_cache_blocks: int = 4
    dir_solution: int = 1

    @property
    def is_zerodev(self) -> bool:
        return self.config.protocol is Protocol.ZERODEV

    def map_core(self, trace_core: int) -> Tuple[int, int]:
        """Trace core -> (socket, local core).

        Interleaved (``socket = core % n_sockets``) so the migratory
        pattern's core walk crosses the socket boundary every step.
        """
        if self.n_sockets == 1:
            return 0, trace_core
        return (trace_core % self.n_sockets,
                trace_core // self.n_sockets)

    def build(self):
        """A fresh system for this spec (one per trace run)."""
        if self.n_sockets == 1:
            from repro.harness.system_builder import build_system
            return build_system(self.config)
        from repro.multisocket.system import MultiSocketSystem
        return MultiSocketSystem(self.config, n_sockets=self.n_sockets,
                                 dir_cache_blocks=self.dir_cache_blocks,
                                 dir_solution=self.dir_solution)


def model_matrix() -> List[ModelSpec]:
    """Every model, baseline first (it anchors the differential)."""
    models = [
        ModelSpec("baseline-1x", micro_config()),
        ModelSpec("baseline-quarter",
                  micro_config(directory=DirectoryConfig(ratio=0.25))),
        ModelSpec("secdir", micro_config(protocol=Protocol.SECDIR)),
        ModelSpec("mgd", micro_config(protocol=Protocol.MGD)),
        # Contender models (ROADMAP): the "no directory at all" pole and
        # the update-on-shared-write protocol.
        ModelSpec("dls", micro_config(
            protocol=Protocol.DLS,
            directory=DirectoryConfig(ratio=None),
            llc_design=LLCDesign.INCLUSIVE)),
        ModelSpec("hybrid", micro_config(protocol=Protocol.HYBRID)),
    ]
    for policy in DirCachingPolicy:
        models.append(ModelSpec(
            f"zerodev-{policy.value}", zerodev_config(dir_caching=policy)))
    for design in (LLCDesign.EPD, LLCDesign.INCLUSIVE):
        models.append(ModelSpec(
            f"zerodev-fpss-{design.value}",
            zerodev_config(llc_design=design)))
    for policy in (DirCachingPolicy.FPSS, DirCachingPolicy.SPILL_ALL):
        models.append(ModelSpec(
            f"zerodev-{policy.value}-splru",
            zerodev_config(dir_caching=policy,
                           llc_replacement=LLCReplacement.SP_LRU)))
    # Two-socket compositions (the layer supports baseline and ZeroDEV).
    half = dict(n_cores=TRACE_CORES // 2)
    models.append(ModelSpec("baseline-2socket", micro_config(**half),
                            n_sockets=2))
    for solution in (1, 2):
        models.append(ModelSpec(
            f"zerodev-2socket-sol{solution}", zerodev_config(**half),
            n_sockets=2, dir_solution=solution))
    return models


@functools.lru_cache(maxsize=1)
def _specs_by_name() -> Dict[str, ModelSpec]:
    """Memoized name -> spec table.

    Fuzz campaigns and the worker fleet resolve models per item;
    rebuilding every config on each lookup is pure waste (the matrix is
    immutable: ModelSpec and SystemConfig are frozen dataclasses).
    """
    return {m.name: m for m in model_matrix()}


def model_by_name(name: str) -> ModelSpec:
    by_name = _specs_by_name()
    try:
        return by_name[name]
    except KeyError:
        from repro.common.errors import ConfigError
        known = ", ".join(sorted(by_name))
        raise ConfigError(
            f"unknown model {name!r}; known models: {known}") from None
