"""Drive one trace through one model under full instrumentation.

Correctness here is layered, from cheap to thorough:

1. **Per-access**: the protocol's built-in shadow-memory check
   (``check_data``) asserts every load is served the latest committed
   version -- the load-value half of the equivalence claim.
2. **Per-step** (every ``check_every`` accesses): the system's own
   ``check_invariants`` (SWMR, directory precision, entry-location
   exclusivity, corrupted-bitmap consistency) plus the structural checks
   shared with modelcheck via :mod:`repro.verify.checks` -- LLC set
   occupancy and index consistency, spLRU
   entry-above-block ordering, housed-implies-garbage and the
   case-(iiib) ban on a block being LLC-resident while its entry is
   housed in memory.
3. **Per-run**: ZeroDEV models must finish with *zero* DEV-caused
   private invalidations, counted both in the stats and as
   ``priv_inv:dev`` events on the obs bus (two independent witnesses).
4. **Read-back**: after the trace, every touched block is loaded once
   more. Whatever final resting place the protocol chose -- private
   line, LLC frame, housed-entry promotion path, DRAM -- the load must
   produce the latest version, which is the final-memory half of the
   equivalence claim: silent data loss anywhere surfaces here at the
   latest.

Any exception at any layer is captured as a non-``ok`` :class:`Outcome`
with the failing step index, which is exactly the interface the ddmin
shrinker needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.common.addressing import BLOCK_SHIFT
from repro.obs import EventBus, attach, attach_multisocket
from repro.verify.checks import (DivergenceError, check_step, dev_count,
                                 shadow_of)
from repro.verify.models import ModelSpec
from repro.verify.tracegen import FuzzTrace
from repro.workloads.trace import Op

__all__ = ["DevEventCounter", "DivergenceError", "Outcome", "run_trace"]


class DevEventCounter:
    """Obs sink counting DEV-caused private invalidations."""

    def __init__(self) -> None:
        self.dev_invalidations = 0

    def handle(self, event) -> None:
        if event.key() == "priv_inv:dev":
            self.dev_invalidations += 1


@dataclass
class Outcome:
    """Result of one (model, trace) run."""

    model: str
    trace: str
    ok: bool
    steps_run: int = 0
    #: Step index at which the failure surfaced; equals ``steps_run``
    #: for failures in the post-trace checks / read-back (the shrinker
    #: uses this to know no trace truncation is possible there).
    failing_step: int = -1
    phase: str = ""                   # trace | final | readback
    #: Readback failures only: the block whose re-load diverged and its
    #: phase-local index in the sorted readback order.  ``failing_step``
    #: stays pinned at ``len(trace)`` for every readback block (there is
    #: no trace step to blame), so without these two fields a readback
    #: report could not name the actual diverging load.
    readback_block: int = -1
    readback_index: int = -1
    error: str = ""
    error_type: str = ""
    dev_invalidations: int = 0
    #: Final committed-version map (block -> version). Identical write
    #: sequences commit identical versions, so this digest must match
    #: across every model that ran the same trace.
    memory_digest: Tuple[Tuple[int, int], ...] = field(default=())

    def __str__(self) -> str:
        if self.ok:
            return f"{self.model} x {self.trace}: ok"
        where = f"step {self.failing_step} ({self.phase})"
        if self.phase == "readback":
            where = (f"readback {self.readback_index} "
                     f"(block {self.readback_block:#x})")
        return (f"{self.model} x {self.trace}: {self.error_type} at "
                f"{where}: {self.error}")


def run_trace(spec: ModelSpec, trace: FuzzTrace, check_every: int = 1,
              fault=None) -> Outcome:
    """Run ``trace`` on a fresh instance of ``spec``'s model.

    ``fault`` is an optional :class:`~repro.verify.faults.FaultPlan`
    armed on the freshly built system before the first access.
    """
    outcome = Outcome(spec.name, trace.name, ok=False)
    system = spec.build()
    bus = EventBus()
    counter = DevEventCounter()
    bus.subscribe(counter)
    if spec.n_sockets == 1:
        attach(system, bus)
    else:
        attach_multisocket(system, bus)
    if fault is not None:
        from repro.verify.faults import arm_fault
        arm_fault(system, fault)

    def issue(trace_core: int, op: Op, block: int) -> None:
        socket, core = spec.map_core(trace_core)
        if spec.n_sockets == 1:
            system.access(core, op, block << BLOCK_SHIFT)
        else:
            system.access(socket, core, op, block << BLOCK_SHIFT)
        bus.step += 1

    step = 0
    phase = "trace"
    readback_index, readback_block = -1, -1
    try:
        for step, (core, op, block) in enumerate(trace.decoded()):
            issue(core, op, block)
            if (step + 1) % check_every == 0:
                check_step(spec, system)
        step = len(trace)
        phase = "final"
        check_step(spec, system)
        if spec.is_zerodev:
            stat_devs = dev_count(spec, system)
            if stat_devs or counter.dev_invalidations:
                raise DivergenceError(
                    f"ZeroDEV model issued {stat_devs} DEV invalidations "
                    f"({counter.dev_invalidations} priv_inv:dev events)")
        phase = "readback"
        for readback_index, readback_block in enumerate(
                sorted({s[2] for s in trace.steps})):
            # The built-in shadow check fires if the latest version of
            # the block is no longer recoverable from any layer.
            issue(0, Op.READ, readback_block)
            check_step(spec, system)
    except Exception as error:            # noqa: BLE001 - reported
        outcome.steps_run = min(step + 1, len(trace))
        outcome.failing_step = step
        outcome.phase = phase
        if phase == "readback":
            outcome.readback_block = readback_block
            outcome.readback_index = readback_index
        outcome.error = str(error)
        outcome.error_type = type(error).__name__
        outcome.dev_invalidations = counter.dev_invalidations
        return outcome

    outcome.ok = True
    outcome.steps_run = len(trace)
    outcome.phase = "done"
    outcome.dev_invalidations = counter.dev_invalidations
    shadow = shadow_of(spec, system)
    outcome.memory_digest = tuple(
        sorted(shadow._latest.items()))    # noqa: SLF001 - oracle probe
    return outcome
