"""Drive one trace through one model under full instrumentation.

Correctness here is layered, from cheap to thorough:

1. **Per-access**: the protocol's built-in shadow-memory check
   (``check_data``) asserts every load is served the latest committed
   version -- the load-value half of the equivalence claim.
2. **Per-step** (every ``check_every`` accesses): the system's own
   ``check_invariants`` (SWMR, directory precision, entry-location
   exclusivity, corrupted-bitmap consistency) plus the structural checks
   below -- LLC set occupancy and index consistency, spLRU
   entry-above-block ordering, housed-implies-garbage and the
   case-(iiib) ban on a block being LLC-resident while its entry is
   housed in memory.
3. **Per-run**: ZeroDEV models must finish with *zero* DEV-caused
   private invalidations, counted both in the stats and as
   ``priv_inv:dev`` events on the obs bus (two independent witnesses).
4. **Read-back**: after the trace, every touched block is loaded once
   more. Whatever final resting place the protocol chose -- private
   line, LLC frame, housed-entry promotion path, DRAM -- the load must
   produce the latest version, which is the final-memory half of the
   equivalence claim: silent data loss anywhere surfaces here at the
   latest.

Any exception at any layer is captured as a non-``ok`` :class:`Outcome`
with the failing step index, which is exactly the interface the ddmin
shrinker needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.caches.block import LineKind
from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import LLCReplacement
from repro.common.errors import ProtocolInvariantError
from repro.obs import EventBus, attach, attach_multisocket
from repro.verify.models import ModelSpec
from repro.verify.tracegen import FuzzTrace
from repro.workloads.trace import Op


class DivergenceError(ProtocolInvariantError):
    """A model-level verification check failed (the model diverged from
    the specified behaviour, even though no protocol assertion fired)."""


class DevEventCounter:
    """Obs sink counting DEV-caused private invalidations."""

    def __init__(self) -> None:
        self.dev_invalidations = 0

    def handle(self, event) -> None:
        if event.key() == "priv_inv:dev":
            self.dev_invalidations += 1


@dataclass
class Outcome:
    """Result of one (model, trace) run."""

    model: str
    trace: str
    ok: bool
    steps_run: int = 0
    #: Step index at which the failure surfaced; equals ``steps_run``
    #: for failures in the post-trace checks / read-back.
    failing_step: int = -1
    phase: str = ""                   # trace | final | readback
    error: str = ""
    error_type: str = ""
    dev_invalidations: int = 0
    #: Final committed-version map (block -> version). Identical write
    #: sequences commit identical versions, so this digest must match
    #: across every model that ran the same trace.
    memory_digest: Tuple[Tuple[int, int], ...] = field(default=())

    def __str__(self) -> str:
        if self.ok:
            return f"{self.model} x {self.trace}: ok"
        return (f"{self.model} x {self.trace}: {self.error_type} at "
                f"step {self.failing_step} ({self.phase}): {self.error}")


def _each_socket(spec: ModelSpec, system):
    if spec.n_sockets == 1:
        yield system
    else:
        yield from system.sockets


def _check_llc_structure(spec: ModelSpec, system) -> None:
    sp_lru = spec.config.llc_replacement is LLCReplacement.SP_LRU
    for socket in _each_socket(spec, system):
        for bank in socket.banks:
            spilled_seen = 0
            for set_idx in range(bank.sets):
                frames = bank.frames_in_set(set_idx)
                if len(frames) > bank.ways:
                    raise DivergenceError(
                        f"bank {bank.bank_id} set {set_idx} holds "
                        f"{len(frames)} frames in {bank.ways} ways")
                data_pos, spill_pos = {}, {}
                for pos, line in enumerate(frames):
                    bucket = (spill_pos
                              if line.kind is LineKind.SPILLED
                              else data_pos)
                    if line.block in bucket:
                        raise DivergenceError(
                            f"duplicate {line.kind.name} frame for block "
                            f"{line.block:#x} in bank {bank.bank_id}")
                    bucket[line.block] = pos
                    if line.kind is LineKind.SPILLED:
                        spilled_seen += 1
                        if bank.peek_spill(line.block) is not line:
                            raise DivergenceError(
                                f"spilled frame for block {line.block:#x} "
                                "missing from the spill index")
                if not sp_lru:
                    continue
                for block, pos in spill_pos.items():
                    # spLRU invariant: a resident spilled entry sits
                    # *above* (more recent than) its block, so the
                    # block ages out first (Section III-D1).
                    if block in data_pos and pos < data_pos[block]:
                        raise DivergenceError(
                            f"spLRU order inverted for block {block:#x}: "
                            "spilled entry is older than its block")
            if bank.spilled_count() != spilled_seen:
                raise DivergenceError(
                    f"bank {bank.bank_id} spill index tracks "
                    f"{bank.spilled_count()} entries but "
                    f"{spilled_seen} spilled frames are resident")


def _check_housing(spec: ModelSpec, system) -> None:
    for socket in _each_socket(spec, system):
        housing = getattr(socket, "_housing", None)
        if housing is None:
            continue
        for block in housing.housed_blocks():
            if not housing.is_garbage(block):
                raise DivergenceError(
                    f"block {block:#x} houses an entry but is not "
                    "marked corrupted")
            bank = socket.bank_of(block)
            # Case (iiib): while the entry lives in home memory the
            # block must not be LLC-resident (Section III-D2).
            if bank.peek_data(block) is not None or \
                    bank.peek_spill(block) is not None:
                raise DivergenceError(
                    f"block {block:#x} is LLC-resident while its entry "
                    "is housed in memory (case iiib)")


def _check_step(spec: ModelSpec, system) -> None:
    system.check_invariants()
    _check_llc_structure(spec, system)
    _check_housing(spec, system)


def _dev_count(spec: ModelSpec, system) -> int:
    if spec.n_sockets == 1:
        return system.stats.dev_invalidations
    return sum(stats.dev_invalidations for stats in system.stats)


def _shadow_of(spec: ModelSpec, system):
    if spec.n_sockets == 1:
        return system.shadow
    return system.sockets[0].shadow


def run_trace(spec: ModelSpec, trace: FuzzTrace, check_every: int = 1,
              fault=None) -> Outcome:
    """Run ``trace`` on a fresh instance of ``spec``'s model.

    ``fault`` is an optional :class:`~repro.verify.faults.FaultPlan`
    armed on the freshly built system before the first access.
    """
    outcome = Outcome(spec.name, trace.name, ok=False)
    system = spec.build()
    bus = EventBus()
    counter = DevEventCounter()
    bus.subscribe(counter)
    if spec.n_sockets == 1:
        attach(system, bus)
    else:
        attach_multisocket(system, bus)
    if fault is not None:
        from repro.verify.faults import arm_fault
        arm_fault(system, fault)

    def issue(trace_core: int, op: Op, block: int) -> None:
        socket, core = spec.map_core(trace_core)
        if spec.n_sockets == 1:
            system.access(core, op, block << BLOCK_SHIFT)
        else:
            system.access(socket, core, op, block << BLOCK_SHIFT)
        bus.step += 1

    step = 0
    phase = "trace"
    try:
        for step, (core, op, block) in enumerate(trace.decoded()):
            issue(core, op, block)
            if (step + 1) % check_every == 0:
                _check_step(spec, system)
        step = len(trace)
        phase = "final"
        _check_step(spec, system)
        if spec.is_zerodev:
            stat_devs = _dev_count(spec, system)
            if stat_devs or counter.dev_invalidations:
                raise DivergenceError(
                    f"ZeroDEV model issued {stat_devs} DEV invalidations "
                    f"({counter.dev_invalidations} priv_inv:dev events)")
        phase = "readback"
        for block in sorted({s[2] for s in trace.steps}):
            # The built-in shadow check fires if the latest version of
            # the block is no longer recoverable from any layer.
            issue(0, Op.READ, block)
            _check_step(spec, system)
    except Exception as error:            # noqa: BLE001 - reported
        outcome.steps_run = min(step + 1, len(trace))
        outcome.failing_step = step
        outcome.phase = phase
        outcome.error = str(error)
        outcome.error_type = type(error).__name__
        outcome.dev_invalidations = counter.dev_invalidations
        return outcome

    outcome.ok = True
    outcome.steps_run = len(trace)
    outcome.phase = "done"
    outcome.dev_invalidations = counter.dev_invalidations
    shadow = _shadow_of(spec, system)
    outcome.memory_digest = tuple(
        sorted(shadow._latest.items()))    # noqa: SLF001 - oracle probe
    return outcome
