"""Seeded adversarial trace generation for the differential fuzzer.

Uniform random traces rarely reach the states where coherence protocols
break; the generator therefore draws each trace from a small library of
adversarial *patterns*, every one aimed at a mechanism the paper had to
defend:

* ``conflict-storm`` -- many tags hammering one or two LLC sets, forcing
  replacement through spilled/fused entry frames (WB_DE pressure, the
  spLRU/dataLRU ordering invariants).
* ``fuse-spill-flap`` -- alternating single-writer and multi-reader
  phases over a few blocks, driving FPSS through fuse -> spill ->
  re-fuse cycles while the set is kept full.
* ``migratory`` -- ownership handed core to core (write after write),
  the classic downgrade/upgrade stress; across sockets this becomes the
  corrupted-block forwarding flow.
* ``socket-storm`` -- writes from even cores, reads from odd cores over
  two hot blocks in one LLC set, with filler pressure from both sides.
  On a two-socket model (cores interleave round-robin) this drives the
  full corrupted-block lifecycle: cross-socket S sharing, socket-level
  WB_DE, presence loss at the reader socket, and the re-read that must
  be forwarded/DENF-NACKed (Figure 15).
* ``mixed`` -- uniform noise over a working set a bit larger than the
  micro LLC, as a control and to interleave the above.

Traces are value-free: blocks are just numbers, data correctness comes
from the shadow-memory version oracle. A trace round-trips through
``.npz`` so any failure is replayable byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.common.config import SystemConfig
from repro.workloads.trace import OP_BY_CODE, Op

#: One access: (core index, op code, block number).
Step = Tuple[int, int, int]

PATTERNS = ("conflict-storm", "fuse-spill-flap", "migratory",
            "socket-storm", "mixed")


@dataclass(frozen=True)
class FuzzTrace:
    """A replayable access sequence shared by every model under test."""

    name: str
    n_cores: int
    steps: Tuple[Step, ...]
    pattern: str = ""
    seed: int = -1

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return (f"FuzzTrace({self.name!r}, steps={len(self.steps)}, "
                f"pattern={self.pattern or '?'})")

    def decoded(self) -> Iterator[Tuple[int, Op, int]]:
        """Steps with the op code resolved to :class:`Op`."""
        for core, code, block in self.steps:
            yield core, OP_BY_CODE[code], block

    def with_steps(self, steps: Sequence[Step],
                   suffix: str = "min") -> "FuzzTrace":
        """A copy carrying ``steps`` (used by the shrinker)."""
        return FuzzTrace(f"{self.name}-{suffix}", self.n_cores,
                         tuple(steps), self.pattern, self.seed)

    # ------------------------------------------------------------------
    # Persistence (mirrors Workload.save/load)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        cores = np.array([s[0] for s in self.steps], dtype=np.int16)
        ops = np.array([s[1] for s in self.steps], dtype=np.int8)
        blocks = np.array([s[2] for s in self.steps], dtype=np.int64)
        np.savez_compressed(
            path, name=np.array(self.name), pattern=np.array(self.pattern),
            n_cores=np.array(self.n_cores), seed=np.array(self.seed),
            cores=cores, ops=ops, blocks=blocks)

    @classmethod
    def load(cls, path) -> "FuzzTrace":
        with np.load(path) as data:
            steps = tuple(zip((int(c) for c in data["cores"]),
                              (int(o) for o in data["ops"]),
                              (int(b) for b in data["blocks"])))
            return cls(str(data["name"]), int(data["n_cores"]), steps,
                       str(data["pattern"]), int(data["seed"]))


@dataclass(frozen=True)
class TraceGeometry:
    """The LLC geometry the generator aims its conflicts at."""

    n_cores: int
    llc_banks: int
    bank_sets: int
    llc_ways: int

    @classmethod
    def of(cls, config: SystemConfig) -> "TraceGeometry":
        return cls(config.n_cores, config.llc_banks,
                   config.llc_bank_sets, config.llc.ways)

    def block_at(self, bank: int, set_idx: int, tag: int) -> int:
        """A block number mapping to (bank, set) with ``tag``."""
        bank_bits = self.llc_banks.bit_length() - 1
        set_bits = self.bank_sets.bit_length() - 1
        return (tag << (bank_bits + set_bits)) | (set_idx << bank_bits) | bank


class TraceGenerator:
    """Draws adversarial traces; ``trace(i)`` is a pure function of
    ``(seed, i)`` so campaigns are reproducible at any parallelism."""

    def __init__(self, geometry: TraceGeometry, seed: int,
                 steps_per_trace: int = 48) -> None:
        self.geometry = geometry
        self.seed = seed
        self.steps_per_trace = steps_per_trace

    def trace(self, index: int) -> FuzzTrace:
        rng = random.Random((self.seed << 20) ^ index)
        pattern = PATTERNS[index % len(PATTERNS)]
        maker = getattr(self, "_" + pattern.replace("-", "_"))
        steps = maker(rng)[:self.steps_per_trace]
        return FuzzTrace(f"fuzz-s{self.seed}-t{index:04d}",
                         self.geometry.n_cores, tuple(steps),
                         pattern, self.seed)

    # ------------------------------------------------------------------
    def _rand_op(self, rng: random.Random, write_weight: int = 3) -> int:
        # Reads dominate (fills + sharing); writes drive versions and
        # upgrades; the occasional ifetch lands shared-only entries.
        roll = rng.randrange(10)
        if roll < write_weight:
            return Op.WRITE.value
        if roll < 9:
            return Op.READ.value
        return Op.IFETCH.value

    def _conflict_storm(self, rng: random.Random) -> List[Step]:
        geom = self.geometry
        targets = [(rng.randrange(geom.llc_banks),
                    rng.randrange(geom.bank_sets))
                   for _ in range(rng.choice((1, 2)))]
        tags = geom.llc_ways + 1 + rng.randrange(4)
        steps: List[Step] = []
        for _ in range(self.steps_per_trace):
            bank, set_idx = rng.choice(targets)
            block = geom.block_at(bank, set_idx, rng.randrange(tags))
            steps.append((rng.randrange(geom.n_cores),
                          self._rand_op(rng), block))
        return steps

    def _fuse_spill_flap(self, rng: random.Random) -> List[Step]:
        geom = self.geometry
        bank, set_idx = (rng.randrange(geom.llc_banks),
                         rng.randrange(geom.bank_sets))
        hot = [geom.block_at(bank, set_idx, tag) for tag in range(3)]
        filler = [geom.block_at(bank, set_idx, 3 + tag)
                  for tag in range(geom.llc_ways)]
        steps: List[Step] = []
        while len(steps) < self.steps_per_trace:
            block = rng.choice(hot)
            writer = rng.randrange(geom.n_cores)
            steps.append((writer, Op.WRITE.value, block))   # -> fused M/E
            for _ in range(rng.randrange(1, 3)):            # -> spilled S
                steps.append((rng.randrange(geom.n_cores),
                              Op.READ.value, block))
            if rng.randrange(3) == 0:                       # set pressure
                steps.append((rng.randrange(geom.n_cores),
                              self._rand_op(rng, 1), rng.choice(filler)))
        return steps

    def _migratory(self, rng: random.Random) -> List[Step]:
        geom = self.geometry
        pool = [rng.randrange(4 * geom.llc_banks * geom.bank_sets)
                for _ in range(4)]
        steps: List[Step] = []
        core = rng.randrange(geom.n_cores)
        while len(steps) < self.steps_per_trace:
            block = rng.choice(pool)
            # Read-modify-write, then migrate to another core. Across a
            # 2-socket model the core stride crosses the socket boundary
            # every step, exercising the corrupted-block forward path.
            if rng.randrange(2):
                steps.append((core, Op.READ.value, block))
            steps.append((core, Op.WRITE.value, block))
            core = (core + 1 + rng.randrange(geom.n_cores - 1)) \
                % geom.n_cores
        return steps

    def _socket_storm(self, rng: random.Random) -> List[Step]:
        geom = self.geometry
        bank, set_idx = (rng.randrange(geom.llc_banks),
                         rng.randrange(geom.bank_sets))
        hot = [geom.block_at(bank, set_idx, tag) for tag in range(2)]
        filler = [geom.block_at(bank, set_idx, 2 + tag)
                  for tag in range(2 * geom.llc_ways)]
        # Even/odd trace cores land on different sockets of a two-socket
        # model (map_core interleaves); on one socket they are just two
        # core groups fighting over the same set.
        even = [c for c in range(geom.n_cores) if c % 2 == 0]
        odd = [c for c in range(geom.n_cores) if c % 2 == 1] or even
        steps: List[Step] = []
        while len(steps) < self.steps_per_trace:
            block = rng.choice(hot)
            steps.append((rng.choice(even), Op.WRITE.value, block))
            steps.append((rng.choice(odd), Op.READ.value, block))
            for _ in range(rng.randrange(2, 5)):     # WB_DE pressure
                steps.append((rng.choice(even), Op.READ.value,
                              rng.choice(filler)))
            for _ in range(rng.randrange(2, 5)):     # reader-side flush
                steps.append((rng.choice(odd), Op.READ.value,
                              rng.choice(filler)))
            steps.append((rng.choice(odd), Op.READ.value, block))
        return steps

    def _mixed(self, rng: random.Random) -> List[Step]:
        geom = self.geometry
        span = 2 * geom.llc_banks * geom.bank_sets * geom.llc_ways
        return [(rng.randrange(geom.n_cores), self._rand_op(rng),
                 rng.randrange(span))
                for _ in range(self.steps_per_trace)]
