"""Seeded protocol mutations: known bugs the checkers must catch.

A mutation is a deliberately wrong protocol rule, planted behind a
``mutations`` flag the simulator consults at one seam (the same idiom
hardware mutation testing uses).  Arming one turns a correct model into
a buggy one *without* changing its structure, so the armed system still
pickles, replays, and canonicalizes exactly like the real thing -- which
is what lets :mod:`repro.verify.modelcheck` snapshot and explore mutant
state spaces.

The harness answers two questions per mutation:

* **Soundness of the checker**: does the bounded-exhaustive frontier
  catch the bug within a small depth?  Every shipped mutation must be
  caught (`catch_depth` in :data:`MUTATIONS` documents where).
* **Value over fuzzing**: does a fixed-seed, fixed-budget
  :func:`~repro.verify.differential.run_campaign` pass miss it?  At
  least one must be missed -- that gap is the reason modelcheck exists.

The five seeded bugs, each breaking a different paper mechanism:

* ``dev-leak-sharer`` -- on a baseline DEV, the home forgets the first
  sharer without invalidating it (directory precision lost).
* ``drop-splru-reorder`` -- spLRU skips the entry-above-block re-touch
  on data (re)insertion (Section III-D1 ordering inverted).
* ``skip-corrupt-restore`` -- the last private copy of a corrupted
  block leaves and the Section III-D4 memory restore never happens
  (silent data loss).
* ``skip-denf-nack`` -- the socket-level home serves a corrupted shared
  block from memory instead of the Figure 15 forward/DENF_NACK flow
  (stale data served cross-socket).
* ``skip-socket-restore`` -- the system-wide last copy of a corrupted
  block leaves and the socket-level restore is dropped, leaving home
  memory corrupted with nobody left to serve the block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.config import DirectoryConfig
from repro.common.errors import ConfigError
from repro.verify.models import ModelSpec, micro_config, model_by_name
from repro.workloads.trace import Op


@dataclass(frozen=True)
class Mutation:
    """One seeded protocol bug."""

    name: str
    description: str
    #: The model whose mechanism the bug corrupts -- a matrix model, or
    #: a gate-only spec from :data:`GATE_SPECS` when the matrix
    #: geometry cannot reach the bug site at small depth.
    reference_model: str
    #: Frontier depth at which modelcheck provably catches the bug on
    #: the reference model with this mutation's alphabet (asserted by
    #: tests/test_modelcheck.py; documented here for CI budgeting).
    catch_depth: int
    #: Block alphabet that reaches the bug site: blocks must collide in
    #: the right structure (directory set, LLC set, L2 set) for the
    #: eviction machinery under test to fire within ``catch_depth``.
    blocks: Tuple[int, ...] = (0, 8, 1)
    #: Full ``(core, op, block)`` alphabet override; empty means the
    #: cores x ops x ``blocks`` cross product.  Used to keep the
    #: deepest scenarios (cross-socket corruption) tractable.
    symbols: Tuple[Tuple[int, Op, int], ...] = ()

    def applies_to(self, spec: ModelSpec) -> bool:
        from repro.common.config import LLCReplacement
        if self.name == "dev-leak-sharer":
            return (not spec.is_zerodev
                    and spec.config.directory.present
                    and not spec.config.directory.unbounded)
        if self.name == "drop-splru-reorder":
            return (spec.config.llc_replacement
                    is LLCReplacement.SP_LRU)
        if self.name == "skip-corrupt-restore":
            return spec.is_zerodev and spec.n_sockets == 1
        if self.name in ("skip-denf-nack", "skip-socket-restore"):
            return spec.is_zerodev and spec.n_sockets > 1
        return False


MUTATIONS: Dict[str, Mutation] = {m.name: m for m in (
    # Blocks 0/8/4 collide in the tiny directory's single set; the
    # third insert forces the DEV whose invalidation the bug drops.
    Mutation("dev-leak-sharer",
             "DEV forgets one sharer without invalidating it",
             reference_model="baseline-tiny-dir", catch_depth=3,
             blocks=(0, 8, 4)),
    Mutation("drop-splru-reorder",
             "spLRU skips the entry-above-block re-touch on insert",
             reference_model="zerodev-fuse-private-spill-shared-splru",
             catch_depth=4),
    # Blocks 0/8/16 collide in LLC bank 0 set 0 *and* L2 set 0: the
    # third write forces a WB_DE and the same fill evicts the last
    # private copy of a corrupted block.
    Mutation("skip-corrupt-restore",
             "last copy of a corrupted block leaves without a restore",
             reference_model="zerodev-fuse-private-spill-shared",
             catch_depth=3, blocks=(0, 8, 16)),
    # The deepest scenario (corrupt at the home socket, downgrade to S,
    # evict the remote copy, re-read): socket 0 only writes and socket 1
    # only reads, which keeps the depth-7 frontier tractable.
    Mutation("skip-denf-nack",
             "corrupted shared block served from home memory, not "
             "forwarded",
             reference_model="zerodev-2socket-sol1", catch_depth=7,
             blocks=(0, 8, 16),
             symbols=((0, Op.WRITE, 0), (0, Op.WRITE, 8),
                      (0, Op.WRITE, 16), (1, Op.READ, 0),
                      (1, Op.READ, 8), (1, Op.READ, 16))),
    # Needs the *system-wide* last copy of a corrupted block to leave
    # cleanly (a dirty copy's writeback heals home memory first).
    # Three same-set reads from the remote socket do exactly that: the
    # third evicts the clean forwarded copy of the first block while
    # its entry bits are housed, so only the dropped restore stands
    # between the eviction and a corrupted home with no sharers.
    Mutation("skip-socket-restore",
             "system-wide last copy of a corrupted block leaves without "
             "the socket-level restore",
             reference_model="zerodev-2socket-sol1", catch_depth=3,
             blocks=(0, 8, 16),
             symbols=((1, Op.READ, 0), (1, Op.READ, 8),
                      (1, Op.READ, 16))),
)}

#: Reference specs that exist only for the mutation gate.  The matrix
#: quarter-ratio directory is fully associative (1 set x 8 ways), so no
#: 3-block alphabet can force the directory eviction ``dev-leak-sharer``
#: corrupts; this spec shrinks the directory to 1 set x 2 ways.
GATE_SPECS: Dict[str, ModelSpec] = {
    "baseline-tiny-dir": ModelSpec(
        "baseline-tiny-dir",
        micro_config(directory=DirectoryConfig(ratio=0.0625, ways=2))),
}


def reference_spec(name: str) -> ModelSpec:
    """A matrix model or a gate-only spec, by name."""
    if name in GATE_SPECS:
        return GATE_SPECS[name]
    return model_by_name(name)


def mutation_names() -> Tuple[str, ...]:
    return tuple(MUTATIONS)


def arm_mutation(system, name: str) -> None:
    """Arm mutation ``name`` on a built system (single or multi socket).

    The flag is planted on every component carrying a mutation seam;
    each seam only reacts to its own name, so over-arming is harmless
    and keeps this free of per-mutation wiring.  Flags are plain
    frozensets (no monkey-patching), so armed systems snapshot and
    restore through pickle unchanged -- a hard requirement of the
    modelcheck frontier.
    """
    if name not in MUTATIONS:
        known = ", ".join(sorted(MUTATIONS))
        raise ConfigError(
            f"unknown mutation {name!r}; known mutations: {known}")
    targets = [system]
    targets.extend(getattr(system, "sockets", ()))
    for target in targets:
        target.mutations = frozenset(target.mutations) | {name}
        for bank in getattr(target, "banks", ()):
            bank.mutations = frozenset(bank.mutations) | {name}


@dataclass(frozen=True)
class MutantSpec(ModelSpec):
    """A :class:`ModelSpec` whose builds come up with a bug armed.

    Drop-in wherever a spec is accepted (``run_trace``,
    ``run_campaign``, modelcheck), which is how the same mutant runs
    under both the fuzz baseline and the exhaustive frontier.
    """

    mutation: str = ""

    def build(self):
        system = super().build()
        if self.mutation:
            arm_mutation(system, self.mutation)
        return system


def mutant_spec(spec: ModelSpec, name: str) -> MutantSpec:
    """``spec`` with mutation ``name`` armed (name gains a ``+`` tag)."""
    mutation = MUTATIONS.get(name)
    if mutation is None:
        known = ", ".join(sorted(MUTATIONS))
        raise ConfigError(
            f"unknown mutation {name!r}; known mutations: {known}")
    if not mutation.applies_to(spec):
        raise ConfigError(
            f"mutation {name!r} does not apply to model {spec.name!r} "
            f"(reference model: {mutation.reference_model})")
    return MutantSpec(name=f"{spec.name}+{name}", config=spec.config,
                      n_sockets=spec.n_sockets,
                      dir_cache_blocks=spec.dir_cache_blocks,
                      dir_solution=spec.dir_solution, mutation=name)
