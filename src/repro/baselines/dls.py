"""DLS: the directoryless-shared-LLC contender (arXiv:1206.4753).

The opposite pole to ZeroDEV's unbounded directory: there is *no*
directory structure at all.  Coherence is resolved at the shared LLC --
the sharer vector for a block lives in the tag of the block's own LLC
line, so a block is tracked exactly while it is LLC-resident.  That
forces an inclusive LLC (enforced by ``SystemConfig`` validation):
evicting an LLC line must back-invalidate every private copy, because
the coherence state dies with the line.

Consequences the comparison figure (``fig_contenders``) measures:

* Zero DEVs by construction -- there is no directory to evict from --
  and zero directory SRAM.
* The loss mechanism is *inclusion victims*: LLC conflicts invalidate
  live private copies (``stats.inclusion_invalidations``), and the
  effective LLC capacity is bounded by inclusion.  ZeroDEV keeps a
  non-inclusive LLC and still has no DEVs, which is exactly the gap the
  paper's design targets.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.caches.block import LLCLine, MESI
from repro.caches.llc import LLCBank
from repro.coherence.entry import DirectoryEntry, DirState, EntryLocation
from repro.coherence.protocol import CMPSystem
from repro.common.config import Protocol
from repro.common.errors import ProtocolInvariantError
from repro.common.messages import MessageType as MT
from repro.obs.events import InvCause


class DLSSystem(CMPSystem):
    """Socket resolving coherence at the shared LLC (no directory)."""

    PROTOCOL = Protocol.DLS

    def _build_directory(self):
        return None     # the LLC tag array *is* the directory

    # ------------------------------------------------------------------
    # Entry lifecycle: entries ride the block's own LLC line
    # ------------------------------------------------------------------
    def _find_entry(self, block: int
                    ) -> Tuple[Optional[DirectoryEntry], int]:
        # The entry is read in the same LLC tag lookup the request
        # performs anyway: zero extra latency, no extra recency touch
        # (the demand paths touch the data line themselves).
        line = self.bank_of(block).peek_data(block)
        return (line.entry if line is not None else None), 0

    def _peek_entry(self, block: int) -> Optional[DirectoryEntry]:
        line = self.bank_of(block).peek_data(block)
        return line.entry if line is not None else None

    def _allocate_entry(self, block: int, state: DirState, requester: int,
                        owner: Optional[int], bank: LLCBank
                        ) -> DirectoryEntry:
        line = bank.peek_data(block)
        if line is None:
            # Inclusive fills install the LLC line before the entry is
            # allocated, so a missing line is a protocol bug.
            raise ProtocolInvariantError(
                f"DLS cannot track block {block:#x}: no LLC line to "
                "carry the sharer vector")
        if line.entry is not None:
            raise ProtocolInvariantError(
                f"DLS double allocation for block {block:#x}")
        self.stats.dir_allocations += 1
        entry = DirectoryEntry(block, state, owner=owner,
                               sharers=1 << requester,
                               location=EntryLocation.LLC_FUSED)
        line.entry = entry
        return entry

    def _free_entry(self, entry: DirectoryEntry, bank: LLCBank,
                    evictor_version: int = 0,
                    evictor_core: Optional[int] = None) -> None:
        line = bank.peek_data(entry.block)
        if line is not None and line.entry is entry:
            line.entry = None

    # ------------------------------------------------------------------
    # LLC eviction: the coherence state dies with the line
    # ------------------------------------------------------------------
    def _back_invalidate(self, bank: LLCBank, victim: LLCLine) -> None:
        # The victim has already left the bank, so its entry can only be
        # reached through the line object itself (the base class's
        # lookup-by-block would come up empty).
        entry = victim.entry
        if entry is None:
            return
        for sharer in list(entry.sharer_cores()):
            self.stats.inclusion_invalidations += 1
            self.mesh.send(MT.INV,
                           self.mesh.core_to_bank(sharer, bank.bank_id))
            self.mesh.send(MT.INV_ACK,
                           self.mesh.core_to_bank(sharer, bank.bank_id))
            line = self.cores[sharer].invalidate(victim.block,
                                                 cause=InvCause.INCLUSION)
            assert line is not None
            if line.state is MESI.M:
                victim.version = line.version
                victim.dirty = True
            entry.remove_sharer(sharer)
        victim.entry = None

    # ------------------------------------------------------------------
    def _notice_without_entry(self, notice, bank: LLCBank) -> None:
        raise ProtocolInvariantError(
            f"DLS eviction notice for block {notice.block:#x} from core "
            f"{notice.core} with no LLC-resident line: inclusion should "
            "have invalidated the private copy first")
