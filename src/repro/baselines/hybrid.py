"""Hybrid update/invalidate contender (arXiv:1502.00101).

A sparse-directory MESI socket where the *write-hit-on-shared* path is
an update, not an invalidation: instead of upgrading to M and killing
every other sharer, the writer pushes the new data through the home to
each sharer, refreshes the LLC copy, and every copy -- including the
writer's -- stays in S.  Write *misses* keep the baseline invalidate
path (the "hybrid" half: a non-sharer writer gains ownership normally).

This stresses the DEV/obs accounting in a way no other model does:

* Sharers survive writes, so directory entries live longer and carry
  more sharers -- NRU evictions of those entries produce *bigger* DEVs
  than the baseline's.
* Update pushes are data movements that must never be counted as
  invalidations: ``stats.update_pushes``/``updates_sent`` and the
  ``UPDATE_PUSH`` obs event are disjoint from ``PRIV_INV`` by
  construction, which :func:`repro.verify.checks.check_hybrid` pins.
* Every S copy must equal the shadow's latest version at every quiesced
  point (the update-coherence invariant) -- a dropped UPDATE leaves a
  stale readable copy that a read *hit* would silently consume, so the
  per-step check is the detection mechanism, not the readback.

Single-socket only: the inter-socket layer speaks invalidate, and none
of the registered hybrid models compose sockets.
"""

from __future__ import annotations

from repro.caches.block import MESI
from repro.caches.llc import LLCBank
from repro.coherence.protocol import CMPSystem
from repro.common.config import Protocol
from repro.common.errors import ProtocolInvariantError
from repro.common.messages import MessageType as MT
from repro.obs.events import EventKind


class HybridSystem(CMPSystem):
    """Baseline socket with update-on-shared-write semantics."""

    PROTOCOL = Protocol.HYBRID

    def _write(self, core: int, block: int) -> int:
        if self.cores[core].probe(block) is not MESI.S:
            # M/E hit or write miss: the baseline invalidate path.
            return super()._write(core, block)
        hier = self.cores[core]
        hier.write_hit_state(block)     # recency touch + L1D fill
        self.stats.l2_hits += 1
        self.stats.update_pushes += 1
        latency = (self._lat.l1_hit + self._lat.l2_hit
                   + self._push_update(core, block))
        exposed = self._lat.store_visibility_fraction
        return max(1, int(latency * exposed))

    # ------------------------------------------------------------------
    def _push_update(self, writer: int, block: int) -> int:
        """Write hit on an S copy: push the new data to every sharer.

        The writer sends the block through the home bank; the home
        forwards one UPDATE per other sharer and refreshes the LLC copy
        (write-through), so the shared state stays globally coherent
        and nobody changes MESI state.  The exposed latency is the home
        round-trip plus the slowest sharer acknowledgment.
        """
        bank = self.bank_of(block)
        latency = self.mesh.send_core_to_bank(MT.UPDATE, writer,
                                              bank.bank_id)
        latency += self._lat.queueing + self._lat.llc_tag
        entry, extra = self._find_entry(block)
        latency += extra
        if entry is None or not entry.is_sharer(writer):
            raise ProtocolInvariantError(
                f"update by core {writer} on block {block:#x} without a "
                "live directory entry: a private S copy must be tracked")
        version = self.shadow.commit_write(block)
        fan = 0
        for sharer in list(entry.sharer_cores()):
            if sharer == writer:
                continue
            fan = max(fan, self._deliver_update(writer, sharer, block,
                                                version, bank))
        self._install_llc_data(bank, block, version, dirty=True)
        self.cores[writer].refresh_version(block, version)
        return latency + fan

    def _deliver_update(self, writer: int, sharer: int, block: int,
                        version: int, bank: LLCBank) -> int:
        """Deliver one UPDATE to ``sharer``; returns its ack latency.

        This is the fault-injection seam for ``drop-update`` /
        ``dup-update`` (:mod:`repro.verify.faults`).
        """
        self.stats.updates_sent += 1
        to_sharer = self.mesh.send(
            MT.UPDATE, self.mesh.core_to_bank(sharer, bank.bank_id))
        to_writer = self.mesh.send_core_to_core(MT.UPDATE_ACK, sharer,
                                                writer)
        self.cores[sharer].refresh_version(block, version)
        if self.obs is not None:
            self.obs.emit(EventKind.UPDATE_PUSH, block=block, core=sharer)
        return to_sharer + self._lat.l2_hit + to_writer
