"""Comparison systems: SecDir (ISCA'19) and Multi-grain Directory
(MICRO'13). The unbounded-directory reference is a configuration of the
baseline (``DirectoryConfig(unbounded=True)``), not a separate class."""

from repro.baselines.secdir import SecDirSystem
from repro.baselines.mgd import MgDSystem

__all__ = ["MgDSystem", "SecDirSystem"]
