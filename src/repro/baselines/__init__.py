"""Comparison systems: SecDir (ISCA'19), Multi-grain Directory
(MICRO'13), DLS (arXiv:1206.4753), and the hybrid update/invalidate
protocol (arXiv:1502.00101). The unbounded-directory reference is a
configuration of the baseline (``DirectoryConfig(unbounded=True)``),
not a separate class."""

from repro.baselines.dls import DLSSystem
from repro.baselines.hybrid import HybridSystem
from repro.baselines.secdir import SecDirSystem
from repro.baselines.mgd import MgDSystem

__all__ = ["DLSSystem", "HybridSystem", "MgDSystem", "SecDirSystem"]
