"""Multi-grain Directory (MgD): dual-grain coherence tracking.

Re-implementation of Zebchuk et al., MICRO 2013, as the paper's
space-efficiency baseline (Figure 26). The directory array holds two kinds
of entries in the same sets:

* **Region entries** track an entire 1 KB private region (16 blocks) with
  a single entry, as long as exactly one core touches it. This is what
  lets MgD track private data with one-sixteenth the entries.
* **Block entries** track individual blocks exactly like the baseline
  (used for shared data and code).

When a second core touches a region, the region entry is *demoted*: block
entries are allocated for every block of the region the owner actually
caches, and tracking proceeds at block grain. Evicting a region entry
invalidates all of the owner's cached blocks in that region -- a
multi-block DEV event, which is why MgD (unlike ZeroDEV) still degrades as
the directory shrinks.

Internally, per-block :class:`DirectoryEntry` views exist for every
tracked block so the generic protocol machinery applies unchanged; *region
coverage* determines whether a view occupies directory capacity (covered
views ride on their region entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.caches.block import MESI
from repro.caches.llc import LLCBank
from repro.coherence.entry import DirectoryEntry, DirState
from repro.coherence.protocol import CMPSystem
from repro.common.addressing import set_index
from repro.common.config import Protocol
from repro.common.errors import ProtocolInvariantError
from repro.common.messages import MessageType as MT
from repro.obs.events import InvCause
from repro.workloads.trace import Op


@dataclass
class RegionEntry:
    """One region-grain directory entry: a private region of one core."""

    region: int
    owner: int
    block_count: int = 0
    nru_ref: bool = True


class MgDDirectory:
    """A set-associative array holding region and block entries mixed."""

    def __init__(self, entries: int, ways: int) -> None:
        self.sets = max(1, entries // ways)
        self.ways = ways
        self._sets: List[List[object]] = [[] for _ in range(self.sets)]
        self.block_entries: Dict[int, DirectoryEntry] = {}
        self.region_entries: Dict[int, RegionEntry] = {}

    # ------------------------------------------------------------------
    def _set_of(self, key: int) -> int:
        return set_index(key, self.sets)

    def set_for(self, item) -> List[object]:
        if isinstance(item, RegionEntry):
            return self._sets[self._set_of(item.region)]
        return self._sets[self._set_of(item.block)]

    def has_room(self, key: int) -> bool:
        return len(self._sets[self._set_of(key)]) < self.ways

    def choose_victim(self, key: int):
        """1-bit NRU over the mixed entries of the target set."""
        ways = self._sets[self._set_of(key)]
        for item in ways:
            if not item.nru_ref:       # type: ignore[union-attr]
                return item
        for item in ways:
            item.nru_ref = False       # type: ignore[union-attr]
        return ways[0]

    def insert_block(self, entry: DirectoryEntry) -> None:
        self.block_entries[entry.block] = entry
        self._sets[self._set_of(entry.block)].append(entry)

    def insert_region(self, entry: RegionEntry) -> None:
        self.region_entries[entry.region] = entry
        self._sets[self._set_of(entry.region)].append(entry)

    def remove(self, item) -> None:
        self.set_for(item).remove(item)
        if isinstance(item, RegionEntry):
            del self.region_entries[item.region]
        else:
            del self.block_entries[item.block]


class MgDSystem(CMPSystem):
    """Baseline socket with the Multi-grain Directory organization."""

    PROTOCOL = Protocol.MGD

    def _build_directory(self):
        self._mgd = MgDDirectory(self.config.directory_entries,
                                 self.config.directory.ways)
        self._region_blocks = self.config.mgd_region_blocks
        #: Per-block views of blocks covered by a region entry.
        self._covered: Dict[int, DirectoryEntry] = {}
        self._requester: Optional[int] = None
        return None

    def _region_of(self, block: int) -> int:
        return block // self._region_blocks

    # ------------------------------------------------------------------
    def access(self, core: int, op: Op, address: int) -> int:
        self._requester = core
        try:
            return super().access(core, op, address)
        finally:
            self._requester = None

    # ------------------------------------------------------------------
    def _find_entry(self, block: int
                    ) -> Tuple[Optional[DirectoryEntry], int]:
        entry = self._mgd.block_entries.get(block)
        if entry is not None:
            entry.nru_ref = True
            return entry, 0
        region = self._mgd.region_entries.get(self._region_of(block))
        if region is None:
            return None, 0
        region.nru_ref = True
        if self._requester is not None and self._requester != region.owner:
            # A second core touched the region: demote to block grain.
            self._demote_region(region)
            return self._mgd.block_entries.get(block), 0
        return self._covered.get(block), 0

    def _find_entry_for_notice(self, block: int, bank: LLCBank
                               ) -> Optional[DirectoryEntry]:
        entry = self._mgd.block_entries.get(block)
        if entry is not None:
            return entry
        return self._covered.get(block)

    def _peek_entry(self, block: int) -> Optional[DirectoryEntry]:
        entry = self._mgd.block_entries.get(block)
        if entry is not None:
            return entry
        return self._covered.get(block)

    # ------------------------------------------------------------------
    def _allocate_entry(self, block: int, state: DirState, requester: int,
                        owner: Optional[int], bank: LLCBank
                        ) -> DirectoryEntry:
        self.stats.dir_allocations += 1
        entry = DirectoryEntry(block, state, owner=owner,
                               sharers=1 << requester)
        region_id = self._region_of(block)
        region = self._mgd.region_entries.get(region_id)
        if state is DirState.ME:
            if region is not None and region.owner == requester:
                # Covered by the requester's own region entry.
                region.block_count += 1
                self._covered[block] = entry
                return entry
            if region is not None:
                self._demote_region(region)
            elif self._region_is_private_to(region_id, requester):
                self._insert_with_eviction(
                    RegionEntry(region_id, requester, block_count=1),
                    region_id)
                self._covered[block] = entry
                return entry
        elif region is not None:
            # A shared fill inside a region tracked as private.
            self._demote_region(region)
        self._insert_with_eviction(entry, block)
        self._mgd.block_entries[block] = entry
        # insert_with_eviction appended a placeholder; fix bookkeeping.
        return entry

    def _region_is_private_to(self, region_id: int,
                              requester: int) -> bool:
        """A region entry is allocated only when no other core currently
        caches any block of the region (MgD's private-region test)."""
        base = region_id * self._region_blocks
        for offset in range(self._region_blocks):
            entry = self._mgd.block_entries.get(base + offset)
            if entry is None:
                entry = self._covered.get(base + offset)
            if entry is None:
                continue
            for core in entry.sharer_cores():
                if core != requester:
                    return False
        return True

    def _insert_with_eviction(self, item, key: int) -> None:
        """Insert a region or block entry, evicting an NRU victim if the
        set is full (the DEV-generating step)."""
        if not self._mgd.has_room(key):
            victim = self._mgd.choose_victim(key)
            self._mgd.remove(victim)
            if isinstance(victim, RegionEntry):
                self._region_dev(victim)
            else:
                self._process_dev(victim)
        if isinstance(item, RegionEntry):
            self._mgd.insert_region(item)
        else:
            self._mgd.set_for(item).append(item)

    def _demote_region(self, region: RegionEntry) -> None:
        """Convert a private region to block-grain entries for every
        block the owner caches (no invalidations)."""
        self.stats.region_demotions += 1
        self._mgd.remove(region)
        base = region.region * self._region_blocks
        for offset in range(self._region_blocks):
            block = base + offset
            entry = self._covered.pop(block, None)
            if entry is None:
                continue
            self._insert_with_eviction(entry, block)
            self._mgd.block_entries[block] = entry

    def _region_dev(self, region: RegionEntry) -> None:
        """Evicting a region entry invalidates every cached block of the
        owner in that region -- a multi-block DEV event."""
        self.stats.dir_evictions += 1
        base = region.region * self._region_blocks
        generated = False
        for offset in range(self._region_blocks):
            block = base + offset
            entry = self._covered.pop(block, None)
            if entry is None:
                continue
            bank = self.bank_of(block)
            for sharer in list(entry.sharer_cores()):
                generated = True
                self.stats.dev_invalidations += 1
                self.stats.invalidations_sent += 1
                self.mesh.send(
                    MT.INV, self.mesh.core_to_bank(sharer, bank.bank_id))
                line = self.cores[sharer].invalidate(
                    block, cause=InvCause.DEV)
                assert line is not None
                if line.state is MESI.M:
                    self.mesh.send(MT.WRITEBACK, self.mesh.core_to_bank(
                        sharer, bank.bank_id))
                    self._install_llc_data(bank, block, line.version,
                                           dirty=True)
                else:
                    self.mesh.send(MT.INV_ACK, self.mesh.core_to_bank(
                        sharer, bank.bank_id))
                entry.remove_sharer(sharer)
        if generated:
            self.stats.dev_events += 1

    def _process_dev(self, victim: DirectoryEntry) -> None:
        # Block-entry DEVs are exactly the baseline flow.
        super()._process_dev(victim)

    # ------------------------------------------------------------------
    def _free_entry(self, entry: DirectoryEntry, bank: LLCBank,
                    evictor_version: int = 0,
                    evictor_core: Optional[int] = None) -> None:
        block = entry.block
        if block in self._covered:
            del self._covered[block]
            region = self._mgd.region_entries.get(self._region_of(block))
            if region is None:
                raise ProtocolInvariantError(
                    f"covered block {block:#x} has no region entry")
            region.block_count -= 1
            if region.block_count == 0:
                self._mgd.remove(region)
            return
        item = self._mgd.block_entries.get(block)
        if item is None:
            raise ProtocolInvariantError(
                f"no MgD entry to free for block {block:#x}")
        self._mgd.remove(item)

    def _entry_state_changed(self, entry: DirectoryEntry,
                             old_state: DirState, bank: LLCBank) -> None:
        """A covered block that becomes shared leaves region coverage."""
        if entry.block not in self._covered:
            return
        if entry.state is DirState.S or (
                entry.state is DirState.ME
                and entry.owner is not None):
            region = self._mgd.region_entries.get(
                self._region_of(entry.block))
            if region is not None and (
                    entry.state is DirState.S
                    or entry.owner != region.owner):
                del self._covered[entry.block]
                region.block_count -= 1
                if region.block_count == 0:
                    self._mgd.remove(region)
                self._insert_with_eviction(entry, entry.block)
                self._mgd.block_entries[entry.block] = entry
