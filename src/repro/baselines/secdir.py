"""SecDir: a secure directory to defeat directory side-channel attacks.

Re-implementation of Yan et al., ISCA 2019, as the paper's security
baseline (Figure 27). The sparse directory is split into a *shared*
partition and one *private* partition per core:

* A new entry starts life in the shared partition.
* An entry evicted from the shared partition migrates into the private
  partitions of its sharer cores (one presence slot per sharer; private
  slots carry no sharer list, which is the iso-storage saving).
* A cross-core conflict in the shared partition therefore no longer
  directly invalidates private copies -- but a private-partition
  *self-conflict* evicts a presence slot and must invalidate that core's
  copy: an (indirect) DEV. Internal fragmentation of the per-core
  partitions is what degrades SecDir at small directory ratios
  (Section V: 11% average loss, 18% max, for the 128-core server group at
  one-eighth size).

Sizing follows the paper's iso-storage rule: for a baseline slice of
``S`` sets x 8 ways, SecDir gets a shared partition of ``S`` sets x 5 ways
and per-core private partitions of ``S/16`` sets x 7 ways.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.caches.block import MESI
from repro.caches.llc import LLCBank
from repro.coherence.directory import SparseDirectory
from repro.coherence.entry import DirectoryEntry, DirState, EntryLocation
from repro.coherence.protocol import CMPSystem
from repro.common.addressing import set_index
from repro.common.config import Protocol, SystemConfig
from repro.common.errors import ConfigError, ProtocolInvariantError
from repro.common.messages import MessageType as MT
from repro.obs.events import InvCause


class _PrivatePartition:
    """One core's private partition: presence slots in LRU sets."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = sets
        self.ways = ways
        self._sets: List[List[int]] = [[] for _ in range(sets)]
        self._resident: Dict[int, int] = {}      # block -> set index

    def __contains__(self, block: int) -> bool:
        return block in self._resident

    def touch(self, block: int) -> None:
        idx = self._resident.get(block)
        if idx is not None:
            slots = self._sets[idx]
            slots.remove(block)
            slots.append(block)

    def insert(self, block: int) -> Optional[int]:
        """Insert a presence slot; returns a victim block if one was
        displaced by a self-conflict."""
        idx = set_index(block, self.sets)
        slots = self._sets[idx]
        victim = None
        if len(slots) >= self.ways:
            victim = slots.pop(0)
            del self._resident[victim]
        slots.append(block)
        self._resident[block] = idx
        return victim

    def remove(self, block: int) -> None:
        idx = self._resident.pop(block, None)
        if idx is not None:
            self._sets[idx].remove(block)


class SecDirDirectory:
    """Shared partition + per-core private partitions."""

    def __init__(self, baseline_entries: int, baseline_ways: int,
                 n_cores: int, shared_ways: int, private_ways: int
                 ) -> None:
        if baseline_entries <= 0:
            raise ConfigError("SecDir needs a sized baseline directory")
        sets = max(1, baseline_entries // baseline_ways)
        self.shared = SparseDirectory(sets * shared_ways, shared_ways)
        private_sets = max(1, sets // 16)
        self.privates = [
            _PrivatePartition(private_sets, private_ways)
            for _ in range(n_cores)
        ]
        #: Entries evicted from the shared partition, now represented by
        #: per-core presence slots. Maps block -> entry.
        self.private_resident: Dict[int, DirectoryEntry] = {}

    def lookup(self, block: int) -> Optional[DirectoryEntry]:
        entry = self.shared.lookup(block)
        if entry is not None:
            return entry
        entry = self.private_resident.get(block)
        if entry is not None:
            for core in entry.sharer_cores():
                self.privates[core].touch(block)
        return entry

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        entry = self.shared.peek(block)
        if entry is not None:
            return entry
        return self.private_resident.get(block)


class SecDirSystem(CMPSystem):
    """Baseline socket with the SecDir directory organization."""

    PROTOCOL = Protocol.SECDIR

    def _build_directory(self):
        config = self.config
        self._secdir = SecDirDirectory(
            config.directory_entries, config.directory.ways,
            config.n_cores, config.secdir_shared_ways,
            config.secdir_private_ways)
        return None   # the base-class sparse directory is unused

    # ------------------------------------------------------------------
    def _find_entry(self, block: int
                    ) -> Tuple[Optional[DirectoryEntry], int]:
        entry = self._secdir.lookup(block)
        if entry is not None and block in self._secdir.private_resident:
            # A demand access re-unifies a private-resident entry into
            # the shared partition.
            self._unify(entry)
        return entry, 0

    def _find_entry_for_notice(self, block: int, bank: LLCBank
                               ) -> Optional[DirectoryEntry]:
        return self._secdir.lookup(block)

    def _peek_entry(self, block: int) -> Optional[DirectoryEntry]:
        return self._secdir.peek(block)

    # ------------------------------------------------------------------
    def _allocate_entry(self, block: int, state: DirState, requester: int,
                        owner: Optional[int], bank: LLCBank
                        ) -> DirectoryEntry:
        self.stats.dir_allocations += 1
        entry = DirectoryEntry(block, state, owner=owner,
                               sharers=1 << requester)
        self._insert_shared(entry)
        return entry

    def _insert_shared(self, entry: DirectoryEntry) -> None:
        shared = self._secdir.shared
        if not shared.has_room(entry.block):
            victim = shared.choose_victim(entry.block)
            shared.remove(victim.block)
            self._migrate_to_private(victim)
        shared.insert(entry)

    def _unify(self, entry: DirectoryEntry) -> None:
        """Move a private-resident entry back into the shared partition."""
        del self._secdir.private_resident[entry.block]
        for core in entry.sharer_cores():
            self._secdir.privates[core].remove(entry.block)
        self._insert_shared(entry)

    def _migrate_to_private(self, entry: DirectoryEntry) -> None:
        """A shared-partition victim migrates to its sharers' private
        partitions; private self-conflicts generate (indirect) DEVs."""
        self._secdir.private_resident[entry.block] = entry
        entry.location = EntryLocation.SPARSE
        for core in list(entry.sharer_cores()):
            victim_block = self._secdir.privates[core].insert(entry.block)
            if victim_block is not None:
                self._private_slot_dev(core, victim_block)

    def _private_slot_dev(self, core: int, block: int) -> None:
        """A private-partition self-conflict invalidates ``core``'s copy
        of ``block`` -- the DEV path SecDir cannot close."""
        entry = self._secdir.peek(block)
        if entry is None or not entry.is_sharer(core):
            raise ProtocolInvariantError(
                f"private slot for untracked block {block:#x}")
        bank = self.bank_of(block)
        self.stats.dev_invalidations += 1
        self.stats.dev_events += 1
        self.stats.invalidations_sent += 1
        self.mesh.send(MT.INV, self.mesh.core_to_bank(core, bank.bank_id))
        line = self.cores[core].invalidate(block, cause=InvCause.DEV)
        assert line is not None
        if line.state is MESI.M:
            self.mesh.send(MT.WRITEBACK,
                           self.mesh.core_to_bank(core, bank.bank_id))
            self._install_llc_data(bank, block, line.version, dirty=True)
        else:
            self.mesh.send(MT.INV_ACK,
                           self.mesh.core_to_bank(core, bank.bank_id))
        entry.remove_sharer(core)
        if entry.empty:
            self._drop_entry(entry)

    def _drop_entry(self, entry: DirectoryEntry) -> None:
        if entry.block in self._secdir.private_resident:
            del self._secdir.private_resident[entry.block]
            for core in entry.sharer_cores():
                self._secdir.privates[core].remove(entry.block)
        else:
            self._secdir.shared.remove(entry.block)

    def _free_entry(self, entry: DirectoryEntry, bank: LLCBank,
                    evictor_version: int = 0,
                    evictor_core: Optional[int] = None) -> None:
        if entry.block in self._secdir.private_resident:
            del self._secdir.private_resident[entry.block]
        else:
            self._secdir.shared.remove(entry.block)

    def _process_notice(self, notice) -> None:
        # Keep the evicting core's private slot (if any) in sync before
        # the generic notice handling updates the entry.
        self._secdir.privates[notice.core].remove(notice.block)
        super()._process_notice(notice)
