"""Durable job store and job kinds for the campaign service.

A *job* is one declarative experiment spec -- a fuzz campaign, a
parameter sweep, or a figure experiment -- submitted as JSON and
executed item-by-item by the worker fleet (:mod:`repro.service.worker`).
Everything about a job is content-addressed and deterministic:

* The **job id** is a SHA-256 over the canonicalized spec, so
  resubmitting an identical spec lands on the existing job -- a finished
  job returns instantly, an interrupted one resumes.
* Each job expands to an ordered list of **items** (single simulator
  runs) whose keys are content hashes over exactly what determines the
  result (model + trace + checking cadence, or the existing
  :func:`~repro.harness.result_cache.run_key` for config/workload runs).
  Item keys index the shared :mod:`~repro.service.store` result store,
  so identical runs dedupe across jobs and users -- and sweep items use
  the *same* keys the interactive session cache uses.
* **Finalize** folds the committed payloads with the same plan/fold
  code the in-process harness uses (:mod:`repro.verify.differential`,
  :class:`~repro.harness.sweep.Sweep`) and writes a canonical
  :class:`~repro.harness.campaign.CampaignJournal` in plan order, so a
  job's journal is bit-identical no matter how many workers ran it, how
  many died, or how many times it was resumed.

Job state lives in ``state.json`` (atomic replace, validated
transitions): ``queued -> running -> done | failed | partial``, with
terminal states re-queueable by resubmission.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.ioutil import atomic_write_text
from repro.harness.campaign import CampaignJournal, journal_summary
from repro.obs.events import EventKind
from repro.obs.sinks import AppendJsonlSink
from repro.service.queue import LeaseQueue, QueueItem
from repro.service.store import ResultStore, open_store, store_from_env

#: Job lifecycle states and the legal transitions between them.
#: Same-state writes are idempotent (two workers marking ``running``).
STATES = ("queued", "running", "done", "failed", "partial")
_TRANSITIONS = {
    "queued": {"queued", "running", "failed"},
    "running": {"running", "done", "failed", "partial"},
    "done": {"queued"},
    "failed": {"queued"},
    "partial": {"queued"},
}

#: Job states with nothing left to execute.
TERMINAL = ("done", "failed", "partial")


def _canonical_json(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _content_key(prefix: str, *parts) -> str:
    digest = hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()
    return f"{prefix}-{digest}"


# ----------------------------------------------------------------------
# Specs and ids
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One declarative experiment: a kind plus normalized parameters."""

    kind: str
    params: Dict[str, Any]

    @classmethod
    def make(cls, kind: str, params: Optional[Dict[str, Any]] = None
             ) -> "JobSpec":
        """Validate and normalize: unknown kinds / bad params raise
        :class:`~repro.common.errors.ConfigError` (one clean CLI line)."""
        if kind not in JOB_KINDS:
            known = ", ".join(sorted(JOB_KINDS))
            raise ConfigError(
                f"unknown job kind {kind!r}; known kinds: {known}")
        normalized = JOB_KINDS[kind].normalize(dict(params or {}))
        return cls(kind, normalized)

    def to_json(self) -> str:
        return _canonical_json({"kind": self.kind, "params": self.params})

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        record = json.loads(text)
        return cls.make(record["kind"], record.get("params"))


def job_id_for(spec: JobSpec) -> str:
    """Content-addressed job id: same spec, same job, every time."""
    digest = hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()
    return f"job-{digest[:16]}"


@dataclass
class JobRecord:
    """One job's externally visible status."""

    job_id: str
    kind: str
    state: str
    items: int
    done: int = 0
    failed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    updated: float = 0.0

    @property
    def progress(self) -> str:
        text = f"{self.done}/{self.items}"
        if self.failed:
            text += f" ({self.failed} failed)"
        return text

    def describe(self) -> str:
        return (f"{self.job_id}  {self.kind:<7} {self.state:<8} "
                f"{self.progress}")


# ----------------------------------------------------------------------
# Job kinds
# ----------------------------------------------------------------------
class JobKind:
    """One executable job flavour: validation, item expansion,
    per-item execution, and the fold back into a verdict + artifacts.

    ``execute`` and ``finalize`` must be deterministic functions of the
    spec (the fleet relies on re-execution after a worker death being
    bit-identical), so parameters are normalized up front and every
    source of run-order or randomness is pinned by the spec itself.
    """

    kind = ""

    def normalize(self, params: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    def item_keys(self, spec: JobSpec) -> List[str]:
        """Content-addressed result-store keys, in execution order."""
        raise NotImplementedError

    def execute(self, spec: JobSpec, index: int) -> Any:
        """Run one item; the return value must pickle."""
        raise NotImplementedError

    def finalize(self, spec: JobSpec, payloads: Sequence[Optional[Any]],
                 failures: Sequence[str], job_dir: Path
                 ) -> Tuple[str, Dict[str, Any]]:
        """Fold payloads (plan order, ``None`` = lost run) into the
        final state + summary, writing the canonical journal."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------
    @staticmethod
    def _int(params, name, default, minimum=0) -> int:
        value = params.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < minimum:
            raise ConfigError(f"job parameter {name!r} must be an "
                              f"integer >= {minimum}, got {value!r}")
        return value

    @staticmethod
    def write_journal(job_dir: Path, meta: Dict[str, Any],
                      records: Sequence[Tuple[str, Any]]) -> Path:
        """(Re)write the canonical plan-order journal for one job.

        Built fresh at finalize time -- never appended to during
        execution -- so the byte stream is a pure function of the spec
        and the committed payloads, independent of worker interleaving.
        """
        path = job_dir / "journal.jsonl"
        try:
            path.unlink()               # finalize may re-run (takeover)
        except OSError:
            pass
        journal = CampaignJournal(path)
        try:
            journal.ensure_meta(**meta)
            for key, payload in records:
                if payload is not None:
                    journal.commit(key, payload)
        finally:
            journal.close()
        return path


class FuzzJobKind(JobKind):
    """A differential fuzz campaign (``repro fuzz`` as a service job)."""

    kind = "fuzz"

    #: Plans are deterministic functions of the normalized params;
    #: memoized so a worker does not regenerate every trace per item.
    _memo: Dict[str, Any] = {}

    def normalize(self, params):
        models = params.get("models")
        if models is not None:
            if (not isinstance(models, list)
                    or not all(isinstance(m, str) for m in models)):
                raise ConfigError("job parameter 'models' must be a "
                                  "list of model names")
            from repro.verify.models import model_by_name
            for name in models:
                model_by_name(name)     # raises ConfigError when unknown
        return {
            "seed": self._int(params, "seed", 0),
            "budget": self._int(params, "budget", 25, minimum=1),
            "check_every": self._int(params, "check_every", 1),
            "steps_per_trace": self._int(params, "steps_per_trace", 48,
                                         minimum=1),
            "models": models,
        }

    def plan(self, spec: JobSpec):
        from repro.verify.differential import plan_campaign
        from repro.verify.models import model_by_name
        memo_key = spec.to_json()
        plan = self._memo.get(memo_key)
        if plan is None:
            params = spec.params
            models = (None if params["models"] is None else
                      [model_by_name(name) for name in params["models"]])
            plan = plan_campaign(
                params["seed"], params["budget"], models=models,
                check_every=params["check_every"],
                steps_per_trace=params["steps_per_trace"])
            self._memo.clear()          # one live plan is plenty
            self._memo[memo_key] = plan
        return plan

    def item_keys(self, spec):
        plan = self.plan(spec)
        keys = []
        for trace in plan.traces:
            for model in plan.specs:
                keys.append(_content_key(
                    "fuzz", model.name, trace.steps, plan.check_every))
        return keys

    def execute(self, spec, index):
        return self.plan(spec).run_one(index)

    def finalize(self, spec, payloads, failures, job_dir):
        from repro.verify.differential import build_report, fold_flat
        plan = self.plan(spec)
        report = build_report(plan)
        report.harness_failures.extend(failures)
        fold_flat(report, plan, list(payloads))
        params = spec.params
        journal = self.write_journal(
            job_dir,
            dict(campaign="fuzz", seed=params["seed"],
                 check_every=params["check_every"],
                 steps_per_trace=params["steps_per_trace"], fault=None,
                 models=[model.name for model in plan.specs]),
            list(zip(plan.keys, payloads)))
        report.journal_path = str(journal)
        state = ("done" if report.ok else
                 "partial" if report.partial else "failed")
        return state, {
            "kind": self.kind,
            "ok": report.ok,
            "runs": report.runs,
            "traces": report.traces_run,
            "models": list(report.models),
            "divergences": [str(d) for d in report.divergences],
            "digest_mismatches": list(report.digest_mismatches),
            "harness_failures": list(report.harness_failures),
            "text": report.summary(),
        }


class SweepJobKind(JobKind):
    """A directory-ratio sweep: ZeroDEV at each ratio R versus the
    sparse baseline, one speedup point per ratio.

    Items are ordinary (config, workload) runs keyed by
    :func:`~repro.harness.result_cache.run_key`, so they share store
    entries with every other sweep, figure, and interactive session.
    """

    kind = "sweep"

    def normalize(self, params):
        apps = params.get("apps", ["freqmine"])
        if (not isinstance(apps, list) or not apps
                or not all(isinstance(a, str) for a in apps)):
            raise ConfigError("job parameter 'apps' must be a non-empty "
                              "list of application names")
        from repro.workloads.suites import find_profile
        for app in apps:
            try:
                find_profile(app)
            except KeyError as exc:
                raise ConfigError(str(exc)) from None
        ratios = params.get("ratios", [0, 0.5, 1.0])
        if (not isinstance(ratios, list) or not ratios
                or not all(isinstance(r, (int, float))
                           and not isinstance(r, bool) and r >= 0
                           for r in ratios)):
            raise ConfigError("job parameter 'ratios' must be a "
                              "non-empty list of ratios >= 0 "
                              "(0 = no directory)")
        return {
            "apps": list(apps),
            "ratios": [float(r) for r in ratios],
            "accesses": self._int(params, "accesses", 2000, minimum=1),
            "seed": self._int(params, "seed", 5),
        }

    def _parts(self, spec: JobSpec):
        from repro.common.config import (DirectoryConfig, LLCReplacement,
                                         Protocol, scaled_socket)
        from repro.harness.sweep import Sweep
        from repro.workloads.suites import find_profile, make_multithreaded
        params = spec.params
        reference = scaled_socket()

        def zerodev_at(ratio):
            return reference.with_(
                protocol=Protocol.ZERODEV,
                directory=DirectoryConfig(
                    ratio=ratio if ratio > 0 else None),
                llc_replacement=LLCReplacement.DATA_LRU)

        sweep = Sweep(reference, zerodev_at)
        workloads = [
            make_multithreaded(find_profile(app), reference,
                               params["accesses"], seed=params["seed"])
            for app in params["apps"]]
        return sweep, workloads, sweep.plan_specs(params["ratios"],
                                                  workloads)

    def item_keys(self, spec):
        from repro.harness.result_cache import run_key
        _sweep, _workloads, run_specs = self._parts(spec)
        return [run_key(config, workload)
                for config, workload in run_specs]

    def execute(self, spec, index):
        from repro.harness.parallel import execute_run
        _sweep, _workloads, run_specs = self._parts(spec)
        return execute_run(run_specs[index])

    def finalize(self, spec, payloads, failures, job_dir):
        sweep, workloads, run_specs = self._parts(spec)
        params = spec.params
        from repro.harness.result_cache import run_key
        keys = [run_key(config, workload)
                for config, workload in run_specs]
        self.write_journal(
            job_dir,
            dict(campaign="sweep", apps=params["apps"],
                 ratios=params["ratios"], accesses=params["accesses"],
                 seed=params["seed"]),
            list(zip(keys, payloads)))
        complete = all(payload is not None for payload in payloads)
        summary: Dict[str, Any] = {
            "kind": self.kind,
            "ok": complete and not failures,
            "harness_failures": list(failures),
        }
        if complete:
            points = sweep.fold_results(params["ratios"], workloads,
                                        list(payloads))
            summary["points"] = [
                {"ratio": point.value,
                 "geomean_speedup": point.geomean_speedup,
                 "speedups": dict(point.speedups)}
                for point in points]
            summary["text"] = "\n".join(
                f"R={point.value:g}: geomean speedup "
                f"{point.geomean_speedup:.3f}" for point in points)
            state = "done" if not failures else "partial"
        else:
            summary["text"] = (f"{sum(p is None for p in payloads)} of "
                               f"{len(payloads)} runs missing")
            state = "partial" if not failures else "partial"
        return state, summary


class FigureJobKind(JobKind):
    """One figure experiment (``repro run FIG``) as a single-item job."""

    kind = "figure"

    def normalize(self, params):
        from repro.cli import EXPERIMENTS
        figure = params.get("figure")
        if figure not in EXPERIMENTS:
            known = ", ".join(sorted(EXPERIMENTS))
            raise ConfigError(f"job parameter 'figure' must be one of: "
                              f"{known} (got {figure!r})")
        return {
            "figure": figure,
            "accesses": self._int(params, "accesses", 0),
        }

    def item_keys(self, spec):
        params = spec.params
        return [_content_key("figure", params["figure"],
                             params["accesses"])]

    def execute(self, spec, index):
        from repro.cli import EXPERIMENTS
        params = spec.params
        if params["accesses"]:
            os.environ["REPRO_ACCESSES"] = str(params["accesses"])
        table, _results = EXPERIMENTS[params["figure"]]()
        return table.to_dict()

    def finalize(self, spec, payloads, failures, job_dir):
        params = spec.params
        table = payloads[0] if payloads else None
        self.write_journal(
            job_dir,
            dict(campaign="figure", figure=params["figure"],
                 accesses=params["accesses"]),
            list(zip(self.item_keys(spec), payloads)))
        if table is None:
            return "partial", {"kind": self.kind, "ok": False,
                               "harness_failures": list(failures),
                               "text": "figure run missing"}
        artifacts = job_dir / "artifacts"
        artifacts.mkdir(exist_ok=True)
        atomic_write_text(artifacts / "figure.json",
                          json.dumps(table, indent=1) + "\n")
        rows = table.get("rows", [])
        return "done", {
            "kind": self.kind,
            "ok": True,
            "title": table.get("title", params["figure"]),
            "rows": rows,
            "harness_failures": list(failures),
            "text": f"{table.get('title', '')}: {len(rows)} rows",
        }


JOB_KINDS: Dict[str, JobKind] = {
    kind.kind: kind
    for kind in (FuzzJobKind(), SweepJobKind(), FigureJobKind())
}


# ----------------------------------------------------------------------
# The on-disk job store
# ----------------------------------------------------------------------
class JobStore:
    """One service root directory: jobs, queue, and the result store.

    Layout::

        <root>/jobs/<job_id>/spec.json      canonical spec (content-addressed)
                             state.json     atomic, validated transitions
                             runs/<i>.pkl   committed item payloads
                             runs/<i>.fail.json  items lost after retries
                             events.jsonl   operational events (append-only)
                             journal.jsonl  canonical plan-order journal
                             report.html    self-contained experiment report
        <root>/queue/                       the shared lease queue
        <root>/store/                       default result store
                                            (``REPRO_STORE`` overrides)
    """

    def __init__(self, root, store: Optional[ResultStore] = None) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.queue_dir = self.root / "queue"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        if store is None:
            store = store_from_env()
        if store is None:
            store = open_store(self.root / "store")
        self.store = store

    # -- paths ---------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def runs_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "runs"

    def payload_path(self, job_id: str, index: int) -> Path:
        return self.runs_dir(job_id) / f"{index:05d}.pkl"

    def fail_path(self, job_id: str, index: int) -> Path:
        return self.runs_dir(job_id) / f"{index:05d}.fail.json"

    def events(self, job_id: str) -> AppendJsonlSink:
        return AppendJsonlSink(self.job_dir(job_id) / "events.jsonl")

    # -- specs ---------------------------------------------------------
    def load_spec(self, job_id: str) -> JobSpec:
        text = (self.job_dir(job_id) / "spec.json").read_text(
            encoding="utf-8")
        return JobSpec.from_json(text)

    # -- state ---------------------------------------------------------
    def _state_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "state.json"

    def read_state(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self._state_path(job_id).read_text(
            encoding="utf-8"))

    def transition(self, job_id: str, new_state: str,
                   **extra) -> Dict[str, Any]:
        """Atomically move a job to ``new_state`` (validated)."""
        state = self.read_state(job_id)
        current = state["state"]
        if new_state not in _TRANSITIONS.get(current, set()):
            raise ConfigError(
                f"job {job_id}: illegal state transition "
                f"{current!r} -> {new_state!r}")
        if new_state != current or extra:
            state["state"] = new_state
            state["updated"] = time.time()
            state.update(extra)
            atomic_write_text(self._state_path(job_id),
                              json.dumps(state, indent=1) + "\n")
            self.events(job_id).write_record(
                {"kind": EventKind.JOB_STATE.value, "cause": new_state})
        return state

    # -- submission ----------------------------------------------------
    def submit(self, spec: JobSpec,
               queue: Optional[LeaseQueue] = None
               ) -> Tuple[JobRecord, bool]:
        """Submit (or resume) a job; returns ``(record, created)``.

        Content-addressed dedupe: an identical spec maps to the same
        job id. A finished job returns its record instantly; a
        ``failed``/``partial`` job is re-queued (only the items without
        committed payloads); a ``queued``/``running`` job is joined.
        """
        job_id = job_id_for(spec)
        job_dir = self.job_dir(job_id)
        queue = queue if queue is not None else LeaseQueue(self.queue_dir)
        keys = JOB_KINDS[spec.kind].item_keys(spec)
        if self._state_path(job_id).exists():
            record = self.record(job_id)
            if record.state == "done" or record.state not in TERMINAL:
                return record, False
            requeued = self._requeue_missing(job_id, keys, queue)
            self.transition(job_id, "queued", requeued=requeued)
            return self.record(job_id), False
        job_dir.mkdir(parents=True, exist_ok=True)
        self.runs_dir(job_id).mkdir(exist_ok=True)
        atomic_write_text(job_dir / "spec.json", spec.to_json() + "\n")
        atomic_write_text(self._state_path(job_id), json.dumps({
            "job": job_id, "kind": spec.kind, "state": "queued",
            "items": len(keys), "submitted": time.time(),
            "updated": time.time(),
        }, indent=1) + "\n")
        self.events(job_id).write_record(
            {"kind": EventKind.JOB_STATE.value, "cause": "queued"})
        for index, key in enumerate(keys):
            queue.enqueue(QueueItem(job_id, index, key))
        return self.record(job_id), True

    def _requeue_missing(self, job_id: str, keys: Sequence[str],
                         queue: LeaseQueue) -> int:
        requeued = 0
        for index, key in enumerate(keys):
            if self.payload_path(job_id, index).exists():
                continue
            try:                        # a fresh attempt gets a clean slate
                self.fail_path(job_id, index).unlink()
            except OSError:
                pass
            queue.enqueue(QueueItem(job_id, index, key))
            requeued += 1
        return requeued

    # -- inspection ----------------------------------------------------
    def record(self, job_id: str) -> JobRecord:
        state = self.read_state(job_id)
        runs = self.runs_dir(job_id)
        done = failed = 0
        if runs.is_dir():
            for path in runs.iterdir():
                if path.name.endswith(".fail.json"):
                    failed += 1
                elif path.suffix == ".pkl":
                    done += 1
        spec = self.load_spec(job_id)
        return JobRecord(job_id, state.get("kind", spec.kind),
                         state["state"], state.get("items", 0),
                         done=done, failed=failed, params=spec.params,
                         updated=state.get("updated", 0.0))

    def list_jobs(self) -> List[JobRecord]:
        records = []
        for path in sorted(self.jobs_dir.iterdir()):
            if (path / "state.json").is_file():
                records.append(self.record(path.name))
        return records

    def failure_lines(self, job_id: str) -> List[str]:
        """Human-readable lines for every lost item, in item order."""
        lines = []
        runs = self.runs_dir(job_id)
        if not runs.is_dir():
            return lines
        for path in sorted(runs.glob("*.fail.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                lines.append(f"{path.name}: unreadable failure record")
                continue
            detail = (f": {record['error_type']}: {record['error']}"
                      if record.get("error_type") else
                      f": {record['error']}" if record.get("error")
                      else "")
            lines.append(f"{record.get('key', path.stem)}: "
                         f"{record.get('kind', 'failure')} after "
                         f"{record.get('attempts', '?')} "
                         f"attempt(s){detail}")
        return lines

    # -- completion ----------------------------------------------------
    def is_complete(self, job_id: str) -> bool:
        """Every item has a committed payload or a failure record."""
        state = self.read_state(job_id)
        items = state.get("items", 0)
        settled = sum(
            1 for index in range(items)
            if self.payload_path(job_id, index).exists()
            or self.fail_path(job_id, index).exists())
        return settled >= items

    def finalize(self, job_id: str,
                 stale_lock_after: float = 600.0) -> Optional[str]:
        """Fold a complete job into its verdict, journal, and report.

        Exactly-once via an ``O_EXCL`` lock file; a lock left by a
        finalizer that died (job still non-terminal after
        ``stale_lock_after`` seconds) is taken over. Returns the final
        state, or ``None`` when the job is incomplete or another
        finalizer holds the lock.
        """
        if not self.is_complete(job_id):
            return None
        state = self.read_state(job_id)
        if state["state"] in TERMINAL:
            return state["state"]
        lock = self.job_dir(job_id) / "finalize.lock"
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                stale = (time.time() - lock.stat().st_mtime
                         > stale_lock_after)
            except OSError:
                return None             # released underneath us
            if not stale:
                return None
            try:                        # dead finalizer: take over
                lock.unlink()
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError:
                return None
        try:
            os.write(fd, f"{os.getpid()}\n".encode())
        finally:
            os.close(fd)
        try:
            spec = self.load_spec(job_id)
            items = state.get("items", 0)
            payloads: List[Optional[Any]] = []
            for index in range(items):
                payloads.append(self._load_payload(job_id, index))
            final_state, summary = JOB_KINDS[spec.kind].finalize(
                spec, payloads, self.failure_lines(job_id),
                self.job_dir(job_id))
            atomic_write_text(self.job_dir(job_id) / "summary.json",
                              json.dumps(summary, indent=1) + "\n")
            self.transition(job_id, final_state)
            return final_state
        finally:
            try:
                lock.unlink()
            except OSError:
                pass

    def _load_payload(self, job_id: str, index: int) -> Optional[Any]:
        try:
            data = self.payload_path(job_id, index).read_bytes()
        except OSError:
            return None
        try:
            return pickle.loads(data)
        except Exception:              # noqa: BLE001 - treat as missing
            return None

    def commit_payload(self, job_id: str, index: int,
                       payload: Any) -> None:
        """Durably (and idempotently) publish one item's payload."""
        path = self.payload_path(job_id, index)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        temp = path.with_name(path.name + f".tmp{os.getpid()}")
        with temp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)

    def journal_status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The canonical journal's summary, if finalized yet."""
        path = self.job_dir(job_id) / "journal.jsonl"
        if not path.exists():
            return None
        return journal_summary(path)
