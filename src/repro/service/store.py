"""Pluggable content-addressed result stores.

A :class:`ResultStore` maps stable string keys (SHA-256 content hashes
computed by the caller -- see :func:`repro.harness.result_cache.run_key`)
to picklable payloads. The contract is deliberately small so backends
stay interchangeable:

* ``get`` never raises: a missing, truncated, bit-flipped, or
  wrong-object entry is a miss (``None``), and the caller recomputes --
  the store is a memoization tier, never a source of truth.
* ``put`` publishes atomically (a reader never observes a half-written
  payload) and raises :class:`OSError` on failure, which callers count
  (:attr:`ResultCache.dropped_puts`) instead of crashing the campaign.

Two backends ship:

* :class:`DiskResultStore` -- one ``<key>.pkl`` per entry, written
  temp-then-rename. The exact layout ``REPRO_CACHE_DIR`` has always
  used, so existing cache directories keep working unchanged.
* :class:`SqliteResultStore` -- a single-file database in WAL mode, safe
  for a worker fleet sharing one store over a local filesystem and
  cheaper than a million-file directory at scale.

:func:`open_store` resolves the ``REPRO_STORE`` spelling: a
``sqlite:<path>`` URL selects sqlite, anything else is a directory.
"""

from __future__ import annotations

import abc
import os
import pickle
import sqlite3
import tempfile
import threading
from pathlib import Path
from typing import Any, Iterator, Optional

#: Environment variable naming the shared store backend; takes
#: precedence over ``REPRO_CACHE_DIR`` (which always means local disk).
STORE_ENV = "REPRO_STORE"

_SQLITE_PREFIX = "sqlite:"


class ResultStore(abc.ABC):
    """Keyed, atomic, corruption-tolerant payload storage."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[Any]:
        """The payload for ``key``, or ``None`` (never raises)."""

    @abc.abstractmethod
    def put(self, key: str, payload: Any) -> None:
        """Durably publish ``payload`` under ``key`` (OSError on failure)."""

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        """Every committed key (order unspecified)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable identity for telemetry and error messages."""

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _key in self.keys())


def _encode(payload: Any) -> bytes:
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _decode(blob: bytes) -> Optional[Any]:
    try:
        return pickle.loads(blob)
    except Exception:                  # noqa: BLE001 - damaged entry
        # Decoding a damaged pickle can raise nearly anything
        # (UnpicklingError, ValueError, EOFError, ...): treat as a miss.
        return None


class DiskResultStore(ResultStore):
    """One atomically-published pickle file per key."""

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                return _decode(handle.read())
        except OSError:
            return None

    def put(self, key: str, payload: Any) -> None:
        temp = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, temp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(_encode(payload))
            os.replace(temp, self.path_for(key))
        except OSError:
            if temp is not None:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
            raise

    def keys(self) -> Iterator[str]:
        if not self.directory.is_dir():
            return
        for entry in sorted(self.directory.glob("*.pkl")):
            yield entry.stem

    def describe(self) -> str:
        return f"disk:{self.directory}"


class SqliteResultStore(ResultStore):
    """All payloads in one WAL-mode sqlite file (fleet-shareable).

    Connections are per-thread (sqlite3 objects must not cross threads)
    and lazily opened, so a store handle pickles/forks cleanly: workers
    inherit the path, not a connection.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._local = threading.local()

    # sqlite connections are not picklable; workers re-open from path.
    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._local = threading.local()

    def _connect(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is not None and \
                getattr(self._local, "pid", None) == os.getpid():
            return connection
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.path, timeout=30.0)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            "key TEXT PRIMARY KEY, payload BLOB NOT NULL)")
        connection.commit()
        self._local.connection = connection
        self._local.pid = os.getpid()
        return connection

    def get(self, key: str) -> Optional[Any]:
        try:
            row = self._connect().execute(
                "SELECT payload FROM results WHERE key = ?",
                (key,)).fetchone()
        except sqlite3.Error:
            return None
        if row is None:
            return None
        return _decode(row[0])

    def put(self, key: str, payload: Any) -> None:
        try:
            with self._connect() as connection:
                connection.execute(
                    "INSERT OR REPLACE INTO results (key, payload) "
                    "VALUES (?, ?)", (key, _encode(payload)))
        except sqlite3.Error as exc:
            # Uniform failure surface with the disk backend: callers
            # count OSError drops, whatever the backend.
            raise OSError(f"sqlite store {self.path}: {exc}") from exc

    def keys(self) -> Iterator[str]:
        try:
            rows = self._connect().execute(
                "SELECT key FROM results ORDER BY key").fetchall()
        except sqlite3.Error:
            return
        for (key,) in rows:
            yield key

    def describe(self) -> str:
        return f"sqlite:{self.path}"


def open_store(spec: os.PathLike) -> ResultStore:
    """Resolve a store spelling: ``sqlite:<path>`` or a directory."""
    text = str(spec)
    if text.startswith(_SQLITE_PREFIX):
        return SqliteResultStore(text[len(_SQLITE_PREFIX):])
    return DiskResultStore(text)


def store_from_env() -> Optional[ResultStore]:
    """The store named by ``REPRO_STORE``, or ``None`` when unset."""
    spec = os.environ.get(STORE_ENV)
    if spec is None or not spec.strip():
        return None
    return open_store(spec.strip())
