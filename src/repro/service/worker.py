"""The worker fleet: ``repro work`` processes draining the lease queue.

Any number of workers (across any number of hosts sharing the service
root) run this loop:

1. **Reclaim** -- re-enqueue expired leases (their owner stopped
   heartbeating: SIGKILL, wedge, power loss). Determinism makes
   re-execution safe; the claim-side committed-payload check makes it
   idempotent.
2. **Claim** -- atomically take the first pending item.
3. **Execute** -- consult the shared result store first (identical runs
   dedupe across jobs); otherwise run the item under
   :func:`~repro.harness.campaign.execute_guarded` (self-armed per-run
   deadline, typed failures) while a daemon thread heartbeats the lease.
4. **Commit** -- atomically publish the payload into the job's ``runs/``
   directory and the result store, then release the lease. Transient
   failures are requeued with their attempt count bumped (capped by the
   campaign policy); persistent ones become failure records.
5. **Finalize** -- when the job's last item settles, fold it into its
   verdict, canonical journal, and HTML report (exactly-once via the
   job store's finalize lock).

Each step is crash-safe at its boundary: dying *before* the payload
commit leaves the lease to expire and the item re-executes
bit-identically; dying *after* leaves a committed payload plus a stale
lease that reclaims into a no-op.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.ioutil import atomic_write_text
from repro.harness.campaign import (EXCEPTION, TIMEOUT, CampaignPolicy,
                                    execute_guarded, policy_from_env)
from repro.obs.events import EventKind
from repro.service.jobs import JOB_KINDS, JobStore
from repro.service.queue import DEFAULT_TTL, LeaseQueue, QueueItem

#: A lease reclaimed this many times marks a poison item: it killed (or
#: outlived) every worker that touched it, so it becomes a failure
#: record instead of being re-executed forever.
MAX_RECLAIMS = 5


class Worker:
    """One fleet member bound to a service root directory."""

    def __init__(self, root, worker_id: Optional[str] = None,
                 lease_ttl: float = DEFAULT_TTL, poll: float = 0.5,
                 policy: Optional[CampaignPolicy] = None,
                 max_reclaims: int = MAX_RECLAIMS) -> None:
        self.jobs = JobStore(root)
        self.queue = LeaseQueue(self.jobs.queue_dir, ttl=lease_ttl)
        self.worker_id = (worker_id or
                          f"{socket.gethostname()}-{os.getpid()}")
        self.poll = poll
        self.policy = policy if policy is not None else \
            (policy_from_env() or CampaignPolicy())
        self.max_reclaims = max_reclaims
        self.processed = 0

    # -- events --------------------------------------------------------
    def _event(self, job_id: str, kind: str, index: int = -1,
               cause: str = "", **extra) -> None:
        record = {"kind": kind, "worker": self.worker_id}
        if index >= 0:
            record["step"] = index
        if cause:
            record["cause"] = cause
        record.update(extra)
        try:
            self.jobs.events(job_id).write_record(record)
        except OSError:
            pass                        # observability must not kill work

    # -- the loop ------------------------------------------------------
    def run(self, once: bool = False, until_idle: bool = False,
            max_items: Optional[int] = None) -> int:
        """Drain the queue; returns the number of items processed.

        ``once`` stops after the first processed item; ``until_idle``
        exits when no work is pending *or in flight* anywhere (the
        batch-mode used by scripts and CI); neither means serve forever.
        """
        while True:
            self._reclaim_expired()
            item = self.queue.claim()
            if item is not None:
                self.process(item)
                self.processed += 1
                if once or (max_items is not None
                            and self.processed >= max_items):
                    return self.processed
                continue
            if until_idle and self.queue.idle():
                return self.processed
            if once:
                return self.processed
            time.sleep(self.poll)

    def _reclaim_expired(self) -> None:
        for lease in self.queue.expired_leases():
            item = self.queue.reclaim(lease)
            if item is not None:
                self._event(item.job, EventKind.LEASE_RECLAIM.value,
                            item.index, cause=self.worker_id,
                            reclaims=item.reclaims)

    # -- one item ------------------------------------------------------
    def process(self, item: QueueItem) -> None:
        try:
            spec = self.jobs.load_spec(item.job)
        except (OSError, ValueError, ConfigError):
            # A queue entry for a job that no longer exists (deleted
            # directory, corrupted spec): drop it rather than wedge.
            self.queue.release(item)
            return
        if self.jobs.payload_path(item.job, item.index).exists():
            # Duplicate from a reclaim race: already committed.
            self.queue.release(item)
            self._maybe_finalize(item.job)
            return
        try:
            self.jobs.transition(item.job, "running")
        except ConfigError:
            # Terminal job with a stray queue entry: nothing to run.
            self.queue.release(item)
            return
        if item.reclaims > self.max_reclaims:
            self._fail(item, kind="worker-death", error_type="",
                       error=f"poison item: lease reclaimed "
                             f"{item.reclaims} times")
            return

        stored = self.jobs.store.get(item.key)
        if stored is not None:
            self._event(item.job, EventKind.STORE_HIT.value, item.index,
                        cause=item.key[:16])
            self._commit(item, stored, to_store=False)
            return

        kind = JOB_KINDS[spec.kind]
        stop = threading.Event()
        beat = threading.Thread(target=self._heartbeat,
                                args=(item, stop), daemon=True)
        beat.start()
        try:
            outcome = execute_guarded(
                lambda index: kind.execute(spec, index), item.index,
                self.policy.run_timeout)
        finally:
            stop.set()
            beat.join()
        if outcome[0] == "ok":
            self._commit(item, outcome[1], to_store=True)
            return
        _tag, fail_kind, error_type, error, _tb, transient = outcome
        retryable = (transient if fail_kind == EXCEPTION else
                     self.policy.retry_timeouts if fail_kind == TIMEOUT
                     else True)
        if retryable and item.attempt <= self.policy.retries:
            event = (EventKind.RUN_TIMEOUT.value if fail_kind == TIMEOUT
                     else EventKind.RUN_RETRY.value)
            self._event(item.job, event, item.index,
                        cause=f"{error_type}: {error}" if error_type
                        else fail_kind, attempt=item.attempt)
            time.sleep(self.policy.backoff(item.attempt))
            self.queue.requeue(item)
            return
        self._fail(item, kind=fail_kind, error_type=error_type,
                   error=error)

    def _heartbeat(self, item: QueueItem, stop: threading.Event) -> None:
        interval = max(0.05, self.queue.ttl / 4.0)
        while not stop.wait(interval):
            try:
                self.queue.heartbeat(item)
            except OSError:
                return                 # lease reclaimed underneath us

    def _commit(self, item: QueueItem, payload, to_store: bool) -> None:
        if to_store:
            try:
                self.jobs.store.put(item.key, payload)
            except OSError:
                pass                    # store is an optimization only
        self.jobs.commit_payload(item.job, item.index, payload)
        self.queue.release(item)
        self._event(item.job, "run_ok", item.index)
        self._maybe_finalize(item.job)

    def _fail(self, item: QueueItem, kind: str, error_type: str,
              error: str) -> None:
        atomic_write_text(
            self.jobs.fail_path(item.job, item.index),
            json.dumps({"key": item.key, "kind": kind,
                        "error_type": error_type, "error": error,
                        "attempts": item.attempt,
                        "reclaims": item.reclaims,
                        "worker": self.worker_id}, indent=1) + "\n")
        self.queue.release(item)
        self._event(item.job, "run_failure", item.index,
                    cause=kind)
        self._maybe_finalize(item.job)

    def _maybe_finalize(self, job_id: str) -> None:
        final = self.jobs.finalize(job_id,
                                   stale_lock_after=self.queue.ttl * 4)
        if final is None:
            return
        try:
            from repro.service.html_report import write_job_report
            write_job_report(self.jobs.job_dir(job_id))
        except Exception as exc:       # noqa: BLE001 - report is a view
            self._event(job_id, "report_error", cause=str(exc))


def run_worker(root, worker_id: Optional[str] = None,
               lease_ttl: float = DEFAULT_TTL, poll: float = 0.5,
               once: bool = False, until_idle: bool = False,
               max_items: Optional[int] = None,
               policy: Optional[CampaignPolicy] = None) -> int:
    """Entry point used by ``repro work`` and the fleet tests."""
    worker = Worker(root, worker_id=worker_id, lease_ttl=lease_ttl,
                    poll=poll, policy=policy)
    return worker.run(once=once, until_idle=until_idle,
                      max_items=max_items)
