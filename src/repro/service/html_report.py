"""Self-contained HTML experiment reports (``repro report --html``).

One HTML file per job (or per event trace), with **zero external
references**: styling is an inline ``<style>`` block, charts are inline
SVG, and there are no scripts, fonts, images, or fetches of any kind --
the file renders identically from a mail attachment, an artifact
store, or ``file://``. CI pins this property (no ``http(s)://``, no
``<script src``, no ``<link``).

Two entry points:

* :func:`render_job_html` / :func:`write_job_report` -- the fleet's
  per-job report: spec, verdict, per-run outcome table (with worker
  attribution from the operational events log), and the campaign-health
  section (retries, timeouts, lease reclaims, store hits) next to the
  DEV-verdict summary the paper's headline property demands.
* :func:`render_trace_html` -- an HTML rendering of the terminal
  ``repro report`` for a JSONL event trace, including inline-SVG
  sparklines from the ``*.timeseries.json`` sibling when present.
"""

from __future__ import annotations

import html
import json
import pickle
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.ioutil import atomic_write_text

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e;
       line-height: 1.45; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #1a1a2e;
     padding-bottom: .3rem; }
h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .25rem .6rem;
         border-bottom: 1px solid #ddd; }
th { background: #f0f0f5; }
tr.bad td { background: #fdecec; }
tr.miss td { background: #fff7e0; }
code { background: #f0f0f5; padding: 0 .25rem; border-radius: 3px;
       font-size: .85em; }
.badge { display: inline-block; padding: .1rem .55rem;
         border-radius: .8rem; color: #fff; font-size: .8rem;
         vertical-align: middle; }
.badge.done, .badge.ok { background: #2e7d32; }
.badge.failed { background: #c62828; }
.badge.partial, .badge.running, .badge.queued { background: #ef6c00; }
.kv { color: #555; font-size: .85rem; }
pre { background: #f7f7fa; padding: .7rem; overflow-x: auto;
      font-size: .8rem; border-radius: 4px; }
svg { vertical-align: middle; }
.health { display: flex; flex-wrap: wrap; gap: .6rem 1.6rem;
          font-size: .85rem; }
.health b { font-size: 1.1rem; }
"""

#: (event/journal kind, label) pairs shown in the health section --
#: the HTML twin of ``repro.obs.report._CAMPAIGN_KINDS``.
_HEALTH_KINDS = (
    ("run_ok", "committed runs"),
    ("run_failure", "failed runs"),
    ("run_retry", "retries"),
    ("run_timeout", "timeouts"),
    ("worker_death", "worker deaths"),
    ("lease_reclaim", "lease reclaims"),
    ("store_hit", "store hits"),
)


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _page(title: str, body: List[str]) -> str:
    return ("<!doctype html>\n<html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            f"<title>{_esc(title)}</title>"
            f"<style>{_STYLE}</style></head>\n<body>\n"
            + "\n".join(body) + "\n</body></html>\n")


def _badge(state: str) -> str:
    css = state if state in ("done", "failed", "partial", "running",
                             "queued", "ok") else "partial"
    return f"<span class=\"badge {css}\">{_esc(state)}</span>"


def _kv_table(pairs: Sequence[Tuple[str, Any]]) -> str:
    rows = "".join(f"<tr><td class=\"kv\">{_esc(key)}</td>"
                   f"<td>{_esc(value)}</td></tr>"
                   for key, value in pairs)
    return f"<table>{rows}</table>"


def _svg_sparkline(values: Sequence[float], width: int = 360,
                   height: int = 36) -> str:
    """An inline-SVG polyline; the HTML twin of the ASCII sparkline."""
    if not values:
        return ""
    top = max(values) or 1.0
    step = width / max(1, len(values) - 1)
    points = " ".join(
        f"{index * step:.1f},"
        f"{height - 2 - (value / top) * (height - 4):.1f}"
        for index, value in enumerate(values))
    return (f"<svg width=\"{width}\" height=\"{height}\" "
            f"viewBox=\"0 0 {width} {height}\">"
            f"<polyline fill=\"none\" stroke=\"#3949ab\" "
            f"stroke-width=\"1.5\" points=\"{points}\"/></svg>")


def _load_jsonl(path: Path) -> List[dict]:
    records = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break               # torn tail
    except OSError:
        pass
    return records


# ----------------------------------------------------------------------
# Payload description (duck-typed across job kinds)
# ----------------------------------------------------------------------
def _describe_payload(payload) -> Tuple[bool, str, int]:
    """(ok, detail, dev_invalidations) for any committed payload."""
    if payload is None:
        return False, "missing", 0
    if hasattr(payload, "ok") and hasattr(payload, "model"):
        # verify.oracle.Outcome
        devs = getattr(payload, "dev_invalidations", 0)
        detail = ("passed" if payload.ok else
                  f"{getattr(payload, 'error_type', '')}: "
                  f"{getattr(payload, 'error', '')} "
                  f"@step {getattr(payload, 'failing_step', '?')}")
        return bool(payload.ok), detail, devs
    stats = getattr(payload, "stats", None)
    if stats is not None:               # harness RunResult
        return True, (f"{getattr(stats, 'total_cycles', 0):,} cycles"),\
            getattr(stats, "dev_invalidations", 0)
    if isinstance(payload, dict):       # figure table
        return True, (f"{payload.get('title', 'table')}: "
                      f"{len(payload.get('rows', []))} rows"), 0
    return True, type(payload).__name__, 0


# ----------------------------------------------------------------------
# Job reports
# ----------------------------------------------------------------------
def _worker_attribution(events: Sequence[dict]
                        ) -> Tuple[Dict[int, str], Counter]:
    """Map item index -> last worker that committed it, plus kind
    totals for the health section."""
    owners: Dict[int, str] = {}
    kinds: Counter = Counter()
    for record in events:
        kind = record.get("kind", "?")
        kinds[kind] += 1
        step = record.get("step")
        if kind == "run_ok" and step is not None:
            owners[step] = record.get("worker", "?")
    return owners, kinds


def render_job_html(job_dir) -> str:
    """The self-contained report for one service job directory."""
    job_dir = Path(job_dir)
    job_id = job_dir.name
    spec = _read_json(job_dir / "spec.json") or {}
    state = _read_json(job_dir / "state.json") or {}
    summary = _read_json(job_dir / "summary.json") or {}
    events = _load_jsonl(job_dir / "events.jsonl")
    owners, kinds = _worker_attribution(events)
    items = state.get("items", 0)

    body = [f"<h1>{_esc(job_id)} {_badge(state.get('state', '?'))}</h1>"]
    pairs = [("kind", spec.get("kind", "?"))]
    pairs += sorted((spec.get("params") or {}).items())
    pairs.append(("items", items))
    body.append("<h2>Spec</h2>")
    body.append(_kv_table(pairs))

    body.append("<h2>Fleet health</h2>")
    cells = "".join(
        f"<div><b>{kinds.get(kind, 0)}</b> {_esc(label)}</div>"
        for kind, label in _HEALTH_KINDS)
    body.append(f"<div class=\"health\">{cells}</div>")

    rows, devs_total, ok_runs = [], 0, 0
    for index in range(items):
        payload = _load_payload(job_dir / "runs" / f"{index:05d}.pkl")
        fail = _read_json(job_dir / "runs" / f"{index:05d}.fail.json")
        if payload is not None:
            ok, detail, devs = _describe_payload(payload)
            devs_total += devs
            ok_runs += int(ok)
            css = "" if ok else "bad"
            status = "ok" if ok else "diverged"
        elif fail is not None:
            detail = (f"{fail.get('kind', 'failure')} after "
                      f"{fail.get('attempts', '?')} attempt(s): "
                      f"{fail.get('error', '')}")
            css, status = "bad", "lost"
        else:
            detail, css, status = "not yet executed", "miss", "pending"
        worker = owners.get(index, fail.get("worker", "") if fail else "")
        rows.append(
            f"<tr class=\"{css}\"><td>{index}</td>"
            f"<td>{_badge(status) if css != 'miss' else _esc(status)}</td>"
            f"<td><code>{_esc(worker)}</code></td>"
            f"<td>{_esc(detail)}</td></tr>")
    body.append("<h2>Runs</h2>")
    body.append("<table><tr><th>#</th><th>status</th><th>worker</th>"
                "<th>detail</th></tr>" + "".join(rows) + "</table>")

    body.append("<h2>DEV verdict</h2>")
    if devs_total == 0 and ok_runs:
        body.append(f"<p>{_badge('ok')} ZERO directory-eviction "
                    f"victims across {ok_runs} completed run(s).</p>")
    elif devs_total:
        body.append(f"<p>{_badge('failed')} {devs_total:,} DEV-caused "
                    "private-cache invalidations recorded.</p>")
    else:
        body.append("<p>No completed runs to judge yet.</p>")

    if summary.get("text"):
        body.append("<h2>Summary</h2>")
        body.append(f"<pre>{_esc(summary['text'])}</pre>")
    return _page(f"repro job {job_id}", body)


def write_job_report(job_dir) -> Path:
    """Render and atomically publish ``<job_dir>/report.html``."""
    job_dir = Path(job_dir)
    path = job_dir / "report.html"
    atomic_write_text(path, render_job_html(job_dir))
    return path


# ----------------------------------------------------------------------
# Trace reports
# ----------------------------------------------------------------------
def render_trace_html(trace_path) -> str:
    """HTML rendering of one JSONL event trace (``repro report``)."""
    from repro.obs.report import summarize
    from repro.obs.trace import timeseries_path_for
    trace_path = Path(trace_path)
    summary = summarize(trace_path)
    meta = summary["meta"]
    body = [f"<h1>{_esc(trace_path.name)}</h1>"]
    if meta:
        body.append(_kv_table([(key, meta[key]) for key in
                               ("workload", "protocol", "n_cores",
                                "epoch_accesses") if key in meta]))
    campaign = summary["campaign"]
    devs = summary["dev_invalidations"]
    body.append("<h2>Verdict</h2>")
    if campaign is not None:
        failed = campaign.get("run_failure", 0)
        body.append(f"<p>{_badge('ok' if not failed else 'failed')} "
                    + _esc("campaign healthy (all runs committed)"
                           if not failed else
                           f"{failed} unresolved run failure(s)")
                    + "</p>")
        cells = "".join(
            f"<div><b>{campaign.get(kind, 0)}</b> {_esc(label)}</div>"
            for kind, label in _HEALTH_KINDS if kind in campaign)
        body.append(f"<div class=\"health\">{cells}</div>")
    else:
        body.append(f"<p>{_badge('ok' if devs == 0 else 'failed')} "
                    + _esc("ZERO directory-eviction victims"
                           if devs == 0 else
                           f"{devs:,} DEV-caused invalidations") + "</p>")
    body.append("<h2>Event totals</h2>")
    kind_rows = "".join(
        f"<tr><td><code>{_esc(kind)}</code></td>"
        f"<td>{count:,}</td></tr>"
        for kind, count in sorted(summary["kinds"].items(),
                                  key=lambda item: -item[1]))
    body.append("<table><tr><th>kind</th><th>count</th></tr>"
                + kind_rows + "</table>")
    series_path = timeseries_path_for(trace_path)
    if series_path.is_file():
        series = _read_json(series_path) or {}
        gauges = series.get("gauges", [])
        charts = []
        for gauge in ("spilled_entries", "fused_entries",
                      "corrupted_blocks", "dir_occupancy", "mpki"):
            values = [float(sample.get(gauge, 0)) for sample in gauges]
            if any(values):
                charts.append(f"<tr><td class=\"kv\">{_esc(gauge)}"
                              f"</td><td>peak {max(values):,.1f}</td>"
                              f"<td>{_svg_sparkline(values)}</td></tr>")
        if charts:
            body.append("<h2>Time series</h2>")
            body.append("<table>" + "".join(charts) + "</table>")
    return _page(f"repro trace {trace_path.name}", body)


# ----------------------------------------------------------------------
def _read_json(path: Path) -> Optional[dict]:
    try:
        value = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return value if isinstance(value, dict) else None


def _load_payload(path: Path):
    try:
        return pickle.loads(path.read_bytes())
    except Exception:                  # noqa: BLE001 - view layer only
        return None
