"""`repro.service`: the async campaign job service.

The campaign layer (:mod:`repro.harness.campaign`) made one blocking
invocation on one host fault tolerant; this package turns it into a
*service* that many users and many hosts submit through:

* :mod:`repro.service.jobs` -- the job API: a sweep/fuzz/figure spec is
  one JSON document, submitted into a durable on-disk :class:`JobStore`
  with atomic state transitions (``queued -> running -> done / failed /
  partial``). Identical submissions share a job id, so a re-submitted
  spec that already completed returns instantly.
* :mod:`repro.service.queue` -- the shared work queue: each job expands
  into run-granular items that workers *lease* (atomic rename), renew by
  heartbeat, and release on commit. A SIGKILLed worker's leases expire
  and are reclaimed by any surviving worker; the simulator is
  deterministic, so re-execution commits the identical payload.
* :mod:`repro.service.worker` -- the worker fleet: ``repro work``
  processes (N per host, hosts sharing one service root) that lease,
  execute, commit, and finalize jobs.
* :mod:`repro.service.store` -- the pluggable content-addressed
  :class:`ResultStore` (local-disk and sqlite backends) shared by the
  fleet and by :class:`~repro.harness.result_cache.ResultCache`, so
  identical runs dedupe to store hits across users and jobs.
* :mod:`repro.service.html_report` -- self-contained HTML experiment
  reports rendered from a job's journal, events, and time series.
"""

from repro.service.jobs import (JOB_KINDS, JobRecord, JobSpec, JobStore,
                                job_id_for)
from repro.service.queue import LeaseQueue, QueueItem
from repro.service.store import (DiskResultStore, ResultStore,
                                 SqliteResultStore, open_store)
from repro.service.worker import Worker, run_worker

__all__ = [
    "DiskResultStore", "JOB_KINDS", "JobRecord", "JobSpec", "JobStore",
    "LeaseQueue", "QueueItem", "ResultStore", "SqliteResultStore",
    "Worker", "job_id_for", "open_store", "run_worker",
]
