"""Filesystem-backed work queue with heartbeat leases.

The fleet's coordination primitive. One queue directory is shared by
every worker on every host (any filesystem with POSIX ``rename``
semantics works -- local disk, NFS); each pending run of each job is one
small JSON file, and all state transitions are atomic renames:

* ``<job>.<index>.todo`` -- pending. Any worker may *claim* it by
  renaming it to ``.lease``; ``rename`` succeeds for exactly one
  claimant, so no lock is needed.
* ``<job>.<index>.lease`` -- claimed. The owner renews the lease by
  touching the file's mtime (a heartbeat thread, several times per
  TTL); it releases the lease by deleting the file after the run's
  payload is durably committed.
* **Expiry** -- a lease whose mtime is older than the TTL belongs to a
  worker that stopped heartbeating (SIGKILLed, wedged past its own
  timeout, unplugged host). Any worker may *reclaim* it: an atomic
  rename to a private temp name elects the single reclaimer, which
  re-enqueues the item with its reclaim count bumped. Re-execution is
  safe because the simulator is deterministic and payload commits are
  atomic and idempotent.

The claim-side duplicate guard (a reclaimed item whose payload actually
landed before its previous owner died) lives in the worker: it checks
for a committed payload right after claiming and releases instead of
re-executing.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.ioutil import atomic_write_text

#: Default seconds without a heartbeat before a lease is reclaimable.
DEFAULT_TTL = 30.0


@dataclass(frozen=True)
class QueueItem:
    """One unit of leased work: a single run of a single job."""

    job: str
    index: int
    key: str
    attempt: int = 1
    reclaims: int = 0
    #: The on-disk lease file while claimed (set by :meth:`LeaseQueue.claim`).
    path: Optional[Path] = field(default=None, compare=False)

    def body(self) -> str:
        return json.dumps({"job": self.job, "index": self.index,
                           "key": self.key, "attempt": self.attempt,
                           "reclaims": self.reclaims}) + "\n"

    @classmethod
    def from_body(cls, text: str, path: Optional[Path] = None
                  ) -> "QueueItem":
        record = json.loads(text)
        return cls(record["job"], record["index"], record["key"],
                   record.get("attempt", 1), record.get("reclaims", 0),
                   path)


class LeaseQueue:
    """The shared todo/lease directory (see module docstring)."""

    def __init__(self, directory, ttl: float = DEFAULT_TTL) -> None:
        ttl = float(ttl)
        # A zero/negative TTL makes every live lease instantly
        # reclaimable (workers steal each other's runs); a non-finite
        # one makes dead workers' leases unreclaimable forever.
        if not math.isfinite(ttl) or ttl <= 0:
            raise ConfigError(
                f"lease TTL must be a positive finite number of "
                f"seconds, got {ttl!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ttl = ttl

    # -- naming --------------------------------------------------------
    def _stem(self, job: str, index: int) -> str:
        return f"{job}.{index:05d}"

    def todo_path(self, job: str, index: int) -> Path:
        return self.directory / (self._stem(job, index) + ".todo")

    # -- enqueue -------------------------------------------------------
    def enqueue(self, item: QueueItem) -> None:
        """Publish one pending item (atomic: no claimant ever reads a
        half-written body)."""
        atomic_write_text(self.todo_path(item.job, item.index),
                          item.body())

    # -- claim / heartbeat / release ----------------------------------
    def claim(self) -> Optional[QueueItem]:
        """Atomically claim the first pending item, or ``None``.

        Items are scanned in sorted order (job id, then item index), so
        idle fleets drain jobs in submission-stable order.
        """
        for todo in sorted(self.directory.glob("*.todo")):
            lease = todo.with_suffix(".lease")
            try:
                os.rename(todo, lease)
            except OSError:
                continue                # another worker won the rename
            try:
                item = QueueItem.from_body(
                    lease.read_text(encoding="utf-8"), lease)
            except (OSError, ValueError, KeyError):
                # Unreadable body (should not happen: enqueue is
                # atomic). Drop the file rather than wedge the queue.
                try:
                    lease.unlink()
                except OSError:
                    pass
                continue
            os.utime(lease)             # the claim is the first heartbeat
            return item
        return None

    def heartbeat(self, item: QueueItem) -> None:
        """Renew the lease; OSError means the lease was reclaimed."""
        if item.path is not None:
            os.utime(item.path)

    def release(self, item: QueueItem) -> None:
        """Drop a lease after its payload committed (idempotent)."""
        if item.path is None:
            return
        try:
            item.path.unlink()
        except OSError:
            pass                        # reclaimed already: harmless

    def requeue(self, item: QueueItem, bump_attempt: bool = True) -> None:
        """Put a claimed item back (retry): todo first, lease after.

        Ordering matters: publishing the ``.todo`` before unlinking the
        ``.lease`` means a crash in between leaves a duplicate, never a
        lost item -- and duplicates are collapsed by the worker's
        committed-payload check after claim.
        """
        attempt = item.attempt + 1 if bump_attempt else item.attempt
        self.enqueue(replace(item, attempt=attempt, path=None))
        self.release(item)

    # -- expiry --------------------------------------------------------
    def expired_leases(self, now: Optional[float] = None) -> List[Path]:
        """Leases whose owner has not heartbeat within the TTL."""
        now = time.time() if now is None else now
        stale = []
        for lease in sorted(self.directory.glob("*.lease")):
            try:
                if now - lease.stat().st_mtime > self.ttl:
                    stale.append(lease)
            except OSError:
                continue                # released/reclaimed underneath us
        return stale

    def reclaim(self, lease: Path) -> Optional[QueueItem]:
        """Atomically take over one expired lease and re-enqueue it.

        Returns the re-enqueued item, or ``None`` when another worker
        (or the original owner's release) got there first. The reclaim
        count is bumped so the worker can fail a poison item that kills
        every worker that touches it.
        """
        takeover = lease.with_name(
            lease.name + f".reclaim{os.getpid()}")
        try:
            os.rename(lease, takeover)
        except OSError:
            return None
        try:
            item = QueueItem.from_body(
                takeover.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError):
            item = None
        if item is not None:
            item = replace(item, reclaims=item.reclaims + 1)
            self.enqueue(item)
        try:
            takeover.unlink()
        except OSError:
            pass
        return item

    # -- introspection -------------------------------------------------
    def pending(self, job: Optional[str] = None) -> int:
        """Count of todo + lease files (optionally one job's)."""
        prefix = f"{job}." if job is not None else ""
        return sum(1 for path in self.directory.iterdir()
                   if path.name.startswith(prefix)
                   and (path.suffix in (".todo", ".lease")))

    def idle(self) -> bool:
        """True when no work is pending or in flight anywhere."""
        return self.pending() == 0
