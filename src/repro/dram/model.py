"""Open-page DRAM timing and traffic model.

The paper models memory with DRAMSim2 (DDR3-2133, two single-channel
controllers, eight banks, 1 KB row buffers). The figures only consume
aggregate DRAM latency and read/write traffic, so this substitute keeps the
pieces that shape those quantities: channel/bank address interleaving and
an open-page row buffer per bank that converts spatial locality into
row-hit latencies.
"""

from __future__ import annotations

from typing import List

from repro.common.addressing import BLOCK_BYTES
from repro.common.config import DramConfig
from repro.common.stats import SystemStats


class DramModel:
    """Latency and traffic accounting for one socket's memory channels."""

    def __init__(self, config: DramConfig, stats: SystemStats) -> None:
        self._config = config
        self._stats = stats
        self._blocks_per_row = config.row_bytes // BLOCK_BYTES
        n_banks = config.channels * config.banks_per_channel
        self._open_rows: List[int] = [-1] * n_banks

    # ------------------------------------------------------------------
    def _bank_and_row(self, block: int) -> tuple:
        config = self._config
        channel = block % config.channels
        row = block // (config.channels * self._blocks_per_row)
        bank_in_channel = row % config.banks_per_channel
        bank = channel * config.banks_per_channel + bank_in_channel
        return bank, row

    def _access(self, block: int) -> int:
        bank, row = self._bank_and_row(block)
        if self._open_rows[bank] == row:
            self._stats.dram_row_hits += 1
            return self._config.row_hit_cycles
        self._open_rows[bank] = row
        self._stats.dram_row_misses += 1
        return self._config.row_miss_cycles

    # ------------------------------------------------------------------
    def read(self, block: int) -> int:
        """Read ``block``; returns the access latency in core cycles."""
        self._stats.dram_reads += 1
        return self._access(block)

    def write(self, block: int, from_entry_eviction: bool = False) -> int:
        """Write ``block``; returns latency (off the critical path for
        ordinary writebacks, but charged for ZeroDEV's synchronous
        read-modify-write of corrupted blocks).

        ``from_entry_eviction`` tags DRAM writes caused by directory-entry
        eviction, the <0.5% statistic of Section III-D3.
        """
        self._stats.dram_writes += 1
        if from_entry_eviction:
            self._stats.dram_writes_entry_eviction += 1
        return self._access(block)
