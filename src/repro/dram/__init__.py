"""Main-memory model (DRAMSim2 substitute)."""

from repro.dram.model import DramModel

__all__ = ["DramModel"]
