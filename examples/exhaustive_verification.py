#!/usr/bin/env python
"""Bounded-exhaustive verification of the ZeroDEV protocol.

Explores EVERY sequence of four memory accesses (two cores, reads and
writes, three conflict-chosen blocks) on a micro configuration with a
deliberately cramped LLC, checking after every single step: SWMR,
directory precision, entry-location exclusivity, the FPSS invariants,
case-(iiib) unreachability, data correctness, and the zero-DEV guarantee.

This is the style of validation Section III-D6 alludes to ("generating
the rule-sets governing this protocol case and the related invariants
requires careful consideration") -- here the implementation is the
rule-set and the explorer is the checker.

Run:  python examples/exhaustive_verification.py
"""

import time

from repro.coherence.exhaustive import ExhaustiveExplorer
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCReplacement, Protocol,
                                 SystemConfig)


def micro_zerodev(policy: DirCachingPolicy) -> SystemConfig:
    return SystemConfig(
        n_cores=2,
        l1i=CacheGeometry(256, 2), l1d=CacheGeometry(256, 2),
        l2=CacheGeometry(512, 2),
        llc=CacheGeometry(1024, 2),          # 16 frames: heavy conflict
        llc_banks=2,
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU,
        dir_caching=policy)


def no_devs(system):
    assert system.stats.dev_invalidations == 0, "DEV under ZeroDEV!"


def main() -> None:
    for policy in DirCachingPolicy:
        explorer = ExhaustiveExplorer(
            lambda policy=policy: micro_zerodev(policy),
            cores=(0, 1), blocks=(0, 8, 1), extra_check=no_devs)
        start = time.time()
        report = explorer.explore(depth=4)
        elapsed = time.time() - start
        status = "OK" if report.ok else f"FAILED: "\
            f"{report.counterexample}"
        print(f"{policy.name:>10}: {report.sequences_explored:,} "
              f"sequences, {report.states_checked:,} states checked "
              f"in {elapsed:.1f}s -> {status}")
        assert report.ok
    print("\nEvery reachable state up to the depth bound satisfies all "
          "protocol invariants, for all three caching policies.")


if __name__ == "__main__":
    main()
