#!/usr/bin/env python
"""Directory-sizing study: how small can the sparse directory get?

Sweeps the sparse-directory provisioning ratio R (entries relative to
aggregate private-L2 blocks) for three designs:

* the traditional baseline (DEVs grow as R shrinks -- Figure 4),
* SecDir at iso-storage (degrades like the baseline -- Figure 27), and
* ZeroDEV (insensitive to R, down to NO directory -- Figures 19-21).

Run:  python examples/directory_sizing_study.py
"""

from repro import (DirectoryConfig, LLCReplacement, Protocol,
                   scaled_socket)
from repro.harness.sweep import Sweep
from repro.workloads import make_rate_workload
from repro.workloads.suites import find_profile

RATIOS = [1.0, 0.5, 0.25, 0.125, 1 / 32, None]   # None = no directory
APPS = ["xalancbmk", "mcf", "gcc.ppO2", "omnetpp"]
ACCESSES = 8_000


def main() -> None:
    config = scaled_socket()
    workloads = [make_rate_workload(find_profile(name), config,
                                    ACCESSES, seed=7)
                 for name in APPS]
    designs = {
        "baseline": lambda r: config.with_(
            directory=DirectoryConfig(ratio=r)),
        "SecDir": lambda r: config.with_(
            protocol=Protocol.SECDIR, directory=DirectoryConfig(ratio=r)),
        "ZeroDEV": lambda r: config.with_(
            protocol=Protocol.ZERODEV, directory=DirectoryConfig(ratio=r),
            llc_replacement=LLCReplacement.DATA_LRU),
    }
    total_accesses = sum(w.total_accesses for w in workloads)

    print(f"{'design':>10} {'R':>6} {'speedup':>9} {'DEVs/kilo-acc':>14}")
    for label, config_for in designs.items():
        ratios = RATIOS if label == "ZeroDEV" else RATIOS[:-1]
        sweep = Sweep(config, config_for, counters=("dev_invalidations",),
                      multiprog=True)
        for point in sweep.run(ratios, workloads):
            ratio = ("none" if point.value is None
                     else f"{point.value:.3f}")
            devs = point.counters["dev_invalidations"]
            print(f"{label:>10} {ratio:>6} "
                  f"{point.geomean_speedup:>9.3f} "
                  f"{1000 * devs / total_accesses:>14.2f}")
        print()
    print("ZeroDEV holds its performance all the way down to zero "
          "directory entries, with zero DEVs by construction; the "
          "baseline and SecDir degrade as R shrinks.")


if __name__ == "__main__":
    main()
