#!/usr/bin/env python
"""Core-cache isolation demo: the directory side channel closes.

Yan et al. (S&P'19) showed that directory conflicts leak a victim's
access pattern: an attacker primes a sparse-directory set with its own
blocks; when the victim touches a block mapping to the same set, a
directory entry is evicted and the attacker's private copy is
invalidated -- observable as extra latency on the attacker's next probe.
SecDir narrows this channel; ZeroDEV closes it by never generating DEVs.

This demo runs the prime+probe experiment many times for secret bits 0
and 1 and reports the attacker's observation (number of probe misses) per
protocol. Under the baseline the distributions are disjoint (perfect
leak); under ZeroDEV they are identical (zero signal).

Run:  python examples/side_channel_isolation.py
"""

from repro import (DirectoryConfig, LLCReplacement, Op, Protocol,
                   build_system)
from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import CacheGeometry, SystemConfig

ATTACKER, VICTIM = 0, 1
TRIALS = 40


def small_socket(protocol: Protocol) -> SystemConfig:
    """A 2-core socket with a deliberately small (1/8x) directory so one
    set can be primed with a handful of blocks."""
    directory = DirectoryConfig(
        ratio=None if protocol is Protocol.ZERODEV else 0.125)
    replacement = (LLCReplacement.DATA_LRU
                   if protocol is Protocol.ZERODEV
                   else LLCReplacement.LRU)
    return SystemConfig(
        n_cores=2,
        l1i=CacheGeometry(512, 2), l1d=CacheGeometry(512, 2),
        l2=CacheGeometry(4096, 4),            # 64 blocks
        llc=CacheGeometry(16384, 4), llc_banks=2,
        protocol=protocol, directory=directory,
        llc_replacement=replacement)


def prime_probe_trial(protocol: Protocol, secret: int, trial: int) -> int:
    """One prime+probe round; returns the attacker's observation."""
    system = build_system(small_socket(protocol))
    config = system.config

    # The monitored directory set (baseline 1/8x: 16 entries, 2 sets).
    dir_sets = max(1, config.directory_entries // 8)
    monitored_set = 0

    def block_in_dir_set(tag: int, set_idx: int) -> int:
        return set_idx + dir_sets * tag

    # Spread the attacker's blocks over L2 sets (consecutive tags walk
    # the L2 sets) so the whole prime set stays cached in its L2.
    attacker_blocks = [block_in_dir_set(tag + 1, monitored_set)
                       for tag in range(8)]

    # Prime: the attacker fills the monitored directory set.
    for block in attacker_blocks:
        system.access(ATTACKER, Op.READ, block << BLOCK_SHIFT)

    # Victim: accesses a block in the monitored set iff secret == 1.
    victim_set = monitored_set if secret else (1 % dir_sets)
    victim_block = block_in_dir_set(1000 + trial, victim_set)
    system.access(VICTIM, Op.READ, victim_block << BLOCK_SHIFT)

    # Probe: re-touch the primed blocks; count core-cache misses.
    before = system.stats.core_cache_misses
    for block in attacker_blocks:
        system.access(ATTACKER, Op.READ, block << BLOCK_SHIFT)
    return system.stats.core_cache_misses - before


def channel_report(protocol: Protocol) -> None:
    observations = {0: [], 1: []}
    for secret in (0, 1):
        for trial in range(TRIALS):
            observations[secret].append(
                prime_probe_trial(protocol, secret, trial))
    mean0 = sum(observations[0]) / TRIALS
    mean1 = sum(observations[1]) / TRIALS
    overlap = len(set(observations[0]) & set(observations[1]))
    print(f"{protocol.value:>10}: probe misses with secret=0: "
          f"{mean0:.2f}, secret=1: {mean1:.2f}  "
          f"({'DISTINGUISHABLE - channel open' if mean1 > mean0 else 'identical - channel closed'})")
    return mean0, mean1, overlap


def main() -> None:
    print(__doc__.splitlines()[0])
    print()
    base = channel_report(Protocol.BASELINE)
    zdev = channel_report(Protocol.ZERODEV)
    assert base[1] > base[0], "baseline should leak via DEVs"
    assert zdev[0] == zdev[1], "ZeroDEV must show zero signal"
    print()
    print("ZeroDEV isolates the attacker's core cache from the victim's "
          "directory pressure: the prime+probe observation carries no "
          "information.")


if __name__ == "__main__":
    main()
