#!/usr/bin/env python
"""Read-latency distribution across the three directory-caching policies.

Figure 17's averages hide *why* FuseAll loses: it lengthens the critical
path of reads to shared blocks from two to three hops, which lives in the
tail of the read-latency distribution, not the mean. This example prints
per-policy latency percentiles and the traffic breakdown for a
sharing-heavy workload.

Run:  python examples/latency_tail_analysis.py
"""

from repro import (DirCachingPolicy, DirectoryConfig, LLCReplacement,
                   Protocol, build_system, run_workload, scaled_socket)
from repro.harness.reporting import traffic_breakdown
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile

ACCESSES = 12_000


def main() -> None:
    config = scaled_socket()
    app = find_profile("streamcluster")      # read-shared heavy
    workload = make_multithreaded(app, config, ACCESSES, seed=21)

    print(f"{app.name}: read-latency percentiles (cycles, bucketed)")
    print(f"{'policy':>10} {'p50':>6} {'p90':>6} {'p99':>6} {'p99.9':>7}"
          f" {'3-hop shared reads':>20}")
    systems = {}
    for policy in DirCachingPolicy:
        system = build_system(config.with_(
            protocol=Protocol.ZERODEV,
            directory=DirectoryConfig(ratio=None),
            llc_replacement=LLCReplacement.DATA_LRU,
            dir_caching=policy))
        run_workload(system, workload)
        systems[policy] = system
        stats = system.stats
        print(f"{policy.name:>10} "
              f"{stats.latency_percentile(0.50):>6} "
              f"{stats.latency_percentile(0.90):>6} "
              f"{stats.latency_percentile(0.99):>6} "
              f"{stats.latency_percentile(0.999):>7} "
              f"{stats.fused_read_forwards:>20,}")

    print("\ntraffic breakdown under FPSS:")
    print(traffic_breakdown(systems[DirCachingPolicy.FPSS].stats))

    fuse = systems[DirCachingPolicy.FUSE_ALL].stats
    fpss = systems[DirCachingPolicy.FPSS].stats
    assert fuse.fused_read_forwards > fpss.fused_read_forwards
    print("\nFuseAll's shared reads forward three-hop (the corrupted "
          "frame cannot supply data); FPSS keeps the baseline two-hop "
          "path, which is why the paper selects it.")


if __name__ == "__main__":
    main()
