#!/usr/bin/env python
"""Four-socket demo: directory entries housed in home memory.

Runs a 32-thread SPLASH2X-like workload across 4 sockets x 8 cores under
baseline and ZeroDEV (no intra-socket directory, deliberately cramped
LLCs) and prints the Section III-D machinery at work: WB_DE writebacks,
corrupted home blocks, GET_DE reads, DENF_NACK re-forwards, and restores
-- all without a single invalidation reaching a core cache because of
directory eviction.

Run:  python examples/multisocket_demo.py
"""

from repro import DirectoryConfig, LLCReplacement, Protocol, scaled_socket
from repro.common.config import CacheGeometry
from repro.harness.runner import run_multisocket_workload
from repro.multisocket import MultiSocketSystem
from repro.workloads.synthetic import generate
from repro.workloads.trace import Workload
from repro.workloads.suites import find_profile

N_SOCKETS = 4
ACCESSES = 6_000


def main() -> None:
    config = scaled_socket().with_(
        llc=CacheGeometry(128 * 1024, 4))     # cramped: forces WB_DE
    zconfig = config.with_(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU)

    app = find_profile("water_nsquared")
    total_cores = N_SOCKETS * config.n_cores
    traces = generate(app, config, ACCESSES, seed=13,
                      cores=list(range(total_cores)))
    workload = Workload(app.name, traces)

    print(f"{app.name}: {total_cores} threads over {N_SOCKETS} sockets, "
          f"{workload.total_accesses:,} accesses")

    base = MultiSocketSystem(config, n_sockets=N_SOCKETS)
    run_multisocket_workload(base, workload)
    zdev = MultiSocketSystem(zconfig, n_sockets=N_SOCKETS)
    run_multisocket_workload(zdev, workload)
    zdev.check_invariants()

    def total(system, field):
        return sum(getattr(s, field) for s in system.stats)

    print()
    print(f"{'':34}{'baseline 1x':>13}{'ZeroDEV NoDir':>15}")
    for label, field in (
        ("cycles (slowest socket)", None),
        ("DEV invalidations", "dev_invalidations"),
        ("entries spilled into LLCs", "entries_spilled"),
        ("entries fused into LLCs", "entries_fused"),
        ("WB_DE (entries written to memory)", "wb_de_messages"),
        ("GET_DE (housed-entry updates)", "get_de_messages"),
        ("corrupted-block demand reads", "corrupted_block_reads"),
        ("corrupted blocks restored", "corrupted_blocks_restored"),
    ):
        if field is None:
            b, z = base.total_cycles(), zdev.total_cycles()
        else:
            b, z = total(base, field), total(zdev, field)
        print(f"{label:34}{b:>13,}{z:>15,}")
    print(f"{'DENF_NACK re-forwards':34}{base.denf_nacks:>13,}"
          f"{zdev.denf_nacks:>15,}")
    print()
    speedup = base.total_cycles() / zdev.total_cycles()
    print(f"ZeroDEV speedup vs baseline: {speedup:.3f} "
          f"(paper: within 1.6% on four sockets)")
    assert total(zdev, "dev_invalidations") == 0


if __name__ == "__main__":
    main()
