#!/usr/bin/env python
"""Quickstart: baseline versus ZeroDEV on one multi-threaded workload.

Builds the Table I socket (capacity-scaled for Python runtime), runs a
PARSEC-like application under (a) the baseline protocol with a 1x sparse
directory and (b) ZeroDEV with *no* directory structure at all, and prints
the numbers that summarize the paper: ZeroDEV matches the well-provisioned
baseline while generating zero directory eviction victims.

Run:  python examples/quickstart.py
"""

from repro import (DirectoryConfig, LLCReplacement, Protocol, build_system,
                   run_workload, scaled_socket)
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile


def main() -> None:
    config = scaled_socket()                      # 8-core Table I socket
    app = find_profile("freqmine")                # migratory sharing
    workload = make_multithreaded(app, config, accesses_per_core=20_000,
                                  seed=42)

    baseline = build_system(config)
    run_workload(baseline, workload)

    zerodev = build_system(config.with_(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),    # no directory at all
        llc_replacement=LLCReplacement.DATA_LRU))
    run_workload(zerodev, workload)

    base, zdev = baseline.stats, zerodev.stats
    print(f"workload: {workload.name} "
          f"({workload.total_accesses} accesses on {config.n_cores} "
          f"cores)")
    print()
    print(f"{'':28}{'baseline 1x':>14}{'ZeroDEV NoDir':>16}")
    rows = [
        ("cycles (makespan)", base.total_cycles, zdev.total_cycles),
        ("core cache misses", base.core_cache_misses,
         zdev.core_cache_misses),
        ("directory eviction victims", base.dev_invalidations,
         zdev.dev_invalidations),
        ("interconnect bytes", base.traffic_bytes, zdev.traffic_bytes),
        ("entries fused in LLC", base.entries_fused, zdev.entries_fused),
        ("entries spilled in LLC", base.entries_spilled,
         zdev.entries_spilled),
        ("entry evictions to memory", base.entry_llc_evictions,
         zdev.entry_llc_evictions),
    ]
    for label, b, z in rows:
        print(f"{label:28}{b:>14,}{z:>16,}")
    print()
    speedup = base.total_cycles / zdev.total_cycles
    print(f"ZeroDEV speedup over baseline: {speedup:.3f}  "
          f"(paper: within 1-2% of a 1x baseline)")
    assert zdev.dev_invalidations == 0, "the ZeroDEV guarantee"
    print("guarantee holds: zero DEV invalidations under ZeroDEV")


if __name__ == "__main__":
    main()
