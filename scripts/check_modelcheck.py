#!/usr/bin/env python
"""CI gate: the memoized model checker is clean and still has teeth.

Five assertions, mirroring the contract in PROTOCOL.md:

1. **Clean matrix.** Every model of the verification matrix (all
   ZeroDEV policy x replacement x LLC designs, the sparse baselines,
   SecDir, MgD, the DLS and hybrid update/invalidate contenders, and
   both 2-socket solutions) explores to the CI depth over the micro
   alphabet with zero counterexamples -- the contenders' presence is
   asserted, so the matrix cannot silently shrink back to 14.
2. **The checker catches what fuzz misses.** Every seeded protocol
   mutation from repro.verify.mutations is refuted by the frontier at
   its documented depth, while the pinned fixed-seed, fixed-budget,
   short-trace fuzz baseline stays green on at least one of them --
   the coverage gap that justifies the model checker's existence.
3. **Parallel bit-identity.** jobs=1 and jobs=4 produce byte-identical
   reports (counters, per-level ledger, counterexample path) on a clean
   model and on the deepest seeded mutation.
4. **Symmetry soundness in anger.** The full mutation gate still
   catches every seeded bug with orbit-minimal canonicalization on.
5. **Symmetry depth gate.** With symmetry on, a clean stats model
   completes CI_DEPTH + 2 uncapped -- the state-collapse the reduction
   exists to buy.

Everything is deterministic (BFS order, pinned seeds, order-insensitive
merges), so any failure is a protocol or checker regression, not noise.
"""

from __future__ import annotations

import sys
import time

from repro.verify.modelcheck import (check_matrix, explore_model,
                                     mutation_gate)
from repro.verify.models import model_by_name
from repro.verify.mutations import MUTATIONS

CI_DEPTH = 4
DEPTH_GATE_MODEL = "zerodev-fuse-private-spill-shared"
IDENTITY_MUTATION = "skip-denf-nack"


def _identity_reports(**kwargs):
    return [report.identity_bytes() for report in (
        explore_model(jobs=jobs, **kwargs) for jobs in (1, 4))]


def main() -> int:
    started = time.perf_counter()
    reports = check_matrix(CI_DEPTH)
    for report in reports:
        print(report.summary())
    explored = {r.model for r in reports}
    missing_contenders = {"dls", "hybrid"} - explored
    if missing_contenders:
        print("FAIL: contender model(s) absent from the clean-matrix "
              "leg: " + ", ".join(sorted(missing_contenders)))
        return 1
    failures = [r for r in reports if not r.ok]
    if failures:
        print(f"FAIL: {len(failures)} counterexample(s) at depth "
              f"{CI_DEPTH}")
        return 1
    capped = [r for r in reports if r.capped]
    if capped:
        print(f"FAIL: {len(capped)} exploration(s) capped before depth "
              f"{CI_DEPTH} -- raise the ceiling, the depth is the gate")
        return 1

    # jobs=1 vs jobs=4 bit-identity: a clean model, then the deepest
    # mutation (its counterexample path must be the BFS-first one on
    # both).
    clean = _identity_reports(spec=model_by_name(DEPTH_GATE_MODEL),
                              depth=CI_DEPTH)
    if clean[0] != clean[1]:
        print(f"FAIL: jobs=1 vs jobs=4 reports differ on clean "
              f"{DEPTH_GATE_MODEL}:\n  {clean[0]!r}\n  {clean[1]!r}")
        return 1
    mutation = MUTATIONS[IDENTITY_MUTATION]
    mutant = _identity_reports(
        spec=model_by_name(mutation.reference_model),
        depth=mutation.catch_depth, blocks=mutation.blocks,
        symbols=mutation.symbols or None, mutation=IDENTITY_MUTATION)
    if mutant[0] != mutant[1]:
        print(f"FAIL: jobs=1 vs jobs=4 reports differ on "
              f"{IDENTITY_MUTATION}:\n  {mutant[0]!r}\n  {mutant[1]!r}")
        return 1
    print(f"parallel identity: jobs=1 == jobs=4 on {DEPTH_GATE_MODEL} "
          f"and {IDENTITY_MUTATION}")

    verdicts = mutation_gate()
    for verdict in verdicts:
        print(verdict.summary())
    missed_by_modelcheck = [v.mutation for v in verdicts
                            if not v.caught_by_modelcheck]
    if missed_by_modelcheck:
        print("FAIL: modelcheck missed seeded mutation(s): "
              + ", ".join(missed_by_modelcheck))
        return 1
    missed_by_fuzz = [v.mutation for v in verdicts if not v.fuzz_caught]
    if not missed_by_fuzz:
        print("FAIL: the fixed-budget fuzz baseline caught every "
              "mutation; the gate no longer demonstrates the coverage "
              "gap -- seed a deeper bug")
        return 1

    # Symmetry soundness in anger: every mutation still refuted under
    # orbit-minimal canonicalization (fuzz leg already pinned above).
    symmetric = mutation_gate(run_fuzz=False, symmetry=True)
    missed_with_symmetry = [v.mutation for v in symmetric
                            if not v.caught_by_modelcheck]
    if missed_with_symmetry:
        print("FAIL: symmetry reduction hid seeded mutation(s): "
              + ", ".join(missed_with_symmetry))
        return 1
    print(f"symmetry gate: all {len(symmetric)} mutations caught with "
          f"--symmetry")

    # Symmetry depth gate: +2 depth, uncapped, on a clean stats model.
    deep = explore_model(model_by_name(DEPTH_GATE_MODEL), CI_DEPTH + 2,
                         symmetry=True)
    print(deep.summary())
    if not deep.ok or deep.capped or deep.depth_reached != CI_DEPTH + 2:
        print(f"FAIL: symmetry-on exploration of {DEPTH_GATE_MODEL} "
              f"did not complete depth {CI_DEPTH + 2} cleanly")
        return 1

    print(f"OK: {len(reports)} models clean at depth {CI_DEPTH}, "
          f"jobs=1==jobs=4, {len(verdicts)} mutations caught by "
          f"modelcheck ({len(missed_by_fuzz)} missed by fuzz: "
          f"{', '.join(missed_by_fuzz)}), symmetry gate clean at depth "
          f"{CI_DEPTH + 2} [{time.perf_counter() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
