#!/usr/bin/env python
"""CI gate: the memoized model checker is clean and still has teeth.

Two assertions, mirroring the contract in PROTOCOL.md:

1. **Clean matrix.** Every model of the verification matrix (all
   ZeroDEV policy x replacement x LLC designs, the sparse baselines,
   SecDir, MgD, and both 2-socket solutions) explores to the CI depth
   over the micro alphabet with zero counterexamples.
2. **The checker catches what fuzz misses.** Every seeded protocol
   mutation from repro.verify.mutations is refuted by the frontier at
   its documented depth, while the pinned fixed-seed, fixed-budget,
   short-trace fuzz baseline stays green on at least one of them --
   the coverage gap that justifies the model checker's existence.

Everything is deterministic (BFS order, pinned seeds), so any failure
is a protocol or checker regression, not noise.
"""

from __future__ import annotations

import sys
import time

from repro.verify.modelcheck import check_matrix, mutation_gate

CI_DEPTH = 4


def main() -> int:
    started = time.perf_counter()
    reports = check_matrix(CI_DEPTH)
    for report in reports:
        print(report.summary())
    failures = [r for r in reports if not r.ok]
    if failures:
        print(f"FAIL: {len(failures)} counterexample(s) at depth "
              f"{CI_DEPTH}")
        return 1
    capped = [r for r in reports if r.capped]
    if capped:
        print(f"FAIL: {len(capped)} exploration(s) capped before depth "
              f"{CI_DEPTH} -- raise the ceiling, the depth is the gate")
        return 1

    verdicts = mutation_gate()
    for verdict in verdicts:
        print(verdict.summary())
    missed_by_modelcheck = [v.mutation for v in verdicts
                            if not v.caught_by_modelcheck]
    if missed_by_modelcheck:
        print("FAIL: modelcheck missed seeded mutation(s): "
              + ", ".join(missed_by_modelcheck))
        return 1
    missed_by_fuzz = [v.mutation for v in verdicts if not v.fuzz_caught]
    if not missed_by_fuzz:
        print("FAIL: the fixed-budget fuzz baseline caught every "
              "mutation; the gate no longer demonstrates the coverage "
              "gap -- seed a deeper bug")
        return 1

    print(f"OK: {len(reports)} models clean at depth {CI_DEPTH}, "
          f"{len(verdicts)} mutations caught by modelcheck, "
          f"{len(missed_by_fuzz)} missed by fuzz "
          f"({', '.join(missed_by_fuzz)}) "
          f"[{time.perf_counter() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
