#!/usr/bin/env python
"""CI smoke check: the job-service worker fleet survives SIGKILL.

Submits one fuzz campaign to a fresh service root, starts a 3-worker
fleet, SIGKILLs one worker while it holds a lease (no cleanup -- the
OOM-kill / pre-empted-runner failure mode), and lets the survivors
finish. The check then runs the identical spec in a second, untouched
service root with a single uninterrupted worker and asserts:

* the killed fleet's job reaches ``done`` with every run committed,
* its canonical journal is **byte-identical** to the clean run's
  (same meta, same keys, same pickled payloads, same order),
* the result digest (SHA-256 over the journal) matches,
* the HTML report exists and is self-contained -- no ``http(s)://``
  URLs, no ``<script``, no ``<link``, nothing fetched at render time.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SPEC = {"budget": 6, "seed": 7,
        "models": ["baseline-1x", "zerodev-fuse-private-spill-shared",
                   "zerodev-spill-all"]}
WORKERS = 3
LEASE_TTL = 3.0


def worker_argv(root: Path) -> list:
    return [sys.executable, "-m", "repro", "work", "--root", str(root),
            "--until-idle", "--poll", "0.05",
            "--lease-ttl", str(LEASE_TTL)]


def submit(root: Path) -> str:
    from repro.service import JobSpec, JobStore
    record, _created = JobStore(root).submit(JobSpec.make("fuzz", SPEC))
    return record.job_id


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.service import JobStore

    with tempfile.TemporaryDirectory() as scratch:
        fleet_root = Path(scratch) / "fleet"
        clean_root = Path(scratch) / "clean"

        # --- the fleet run, with one worker murdered mid-lease -------
        job_id = submit(fleet_root)
        fleet = [subprocess.Popen(worker_argv(fleet_root))
                 for _ in range(WORKERS)]
        victim = fleet[0]
        queue_dir = fleet_root / "queue"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if list(queue_dir.glob("*.lease")):
                break
            if all(worker.poll() is not None for worker in fleet):
                return fail("fleet drained before any lease was seen; "
                            "raise the budget")
            time.sleep(0.01)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        print(f"SIGKILLed worker {victim.pid} "
              f"({len(list(queue_dir.glob('*.lease')))} lease(s) held)")
        for worker in fleet[1:]:
            if worker.wait(timeout=300) != 0:
                return fail(f"surviving worker exited {worker.returncode}")

        # The victim's lease outlives it; one sweep-up pass reclaims
        # and re-executes whatever it was holding when it died.
        result = subprocess.run(worker_argv(fleet_root), timeout=300)
        if result.returncode != 0:
            return fail(f"sweep-up worker exited {result.returncode}")

        store = JobStore(fleet_root)
        record = store.record(job_id)
        if record.state != "done":
            return fail(f"fleet job finished {record.state!r}, "
                        f"expected done ({record.progress})")
        print(f"fleet job done: {record.progress}")

        # --- the uninterrupted reference run --------------------------
        clean_job = submit(clean_root)
        if clean_job != job_id:
            return fail("job ids diverged for identical specs")
        result = subprocess.run(worker_argv(clean_root), timeout=600)
        if result.returncode != 0:
            return fail(f"clean worker exited {result.returncode}")
        if JobStore(clean_root).record(clean_job).state != "done":
            return fail("clean job did not finish done")

        # --- bit-identity ---------------------------------------------
        fleet_journal = (fleet_root / "jobs" / job_id
                         / "journal.jsonl").read_bytes()
        clean_journal = (clean_root / "jobs" / job_id
                         / "journal.jsonl").read_bytes()
        if fleet_journal != clean_journal:
            return fail("killed-fleet journal differs from the "
                        "uninterrupted run's journal")
        digest = hashlib.sha256(fleet_journal).hexdigest()
        print(f"journals byte-identical ({len(fleet_journal)} bytes, "
              f"sha256 {digest[:16]}...)")

        # --- the HTML report is self-contained ------------------------
        report = fleet_root / "jobs" / job_id / "report.html"
        if not report.is_file():
            return fail("report.html missing")
        html = report.read_text(encoding="utf-8").lower()
        for needle in ("http://", "https://", "<script", "<link",
                       "@import"):
            if needle in html:
                return fail(f"report.html is not self-contained: "
                            f"contains {needle!r}")
        summary = json.loads((fleet_root / "jobs" / job_id
                              / "summary.json").read_text())
        if not summary.get("ok"):
            return fail(f"summary not ok: {summary.get('text')}")
        print(f"report.html self-contained ({report.stat().st_size} "
              f"bytes); verdict: ok")
    print("OK: 3-worker fleet survived SIGKILL with a bit-identical "
          "journal and a self-contained report")
    return 0


if __name__ == "__main__":
    sys.exit(main())
