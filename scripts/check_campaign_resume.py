#!/usr/bin/env python
"""CI smoke check: a SIGKILLed fuzz campaign resumes to a clean finish.

Launches ``repro fuzz --resume <journal>`` as a subprocess, waits for
the journal to accumulate some committed runs, kills the campaign with
SIGKILL (no cleanup, like an OOM kill or a pre-empted CI runner), then
re-runs the identical command to completion. The second invocation must

* exit 0 with a clean verdict,
* report resumed runs (so the journal really was consulted), and
* leave the atomic checkpoint summary next to the journal.

Because every committed run's payload is replayed from the journal, the
resumed report is the one an uninterrupted campaign would have printed;
the final run count is asserted against budget x matrix size.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SEED = 7
BUDGET = 12


def fuzz_argv(journal: Path) -> list:
    return [sys.executable, "-m", "repro", "fuzz",
            "--seed", str(SEED), "--budget", str(BUDGET),
            "--jobs", "2", "--no-shrink", "--retries", "1",
            "--resume", str(journal)]


def committed_runs(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    with journal.open("r", encoding="utf-8") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            count += record.get("kind") == "run_ok"
    return count


def main() -> int:
    from repro.verify.models import model_matrix

    expected_runs = BUDGET * len(model_matrix())
    with tempfile.TemporaryDirectory() as scratch:
        journal = Path(scratch) / "fuzz.jsonl"

        victim = subprocess.Popen(fuzz_argv(journal))
        deadline = time.monotonic() + 300.0
        while committed_runs(journal) < 4:
            if victim.poll() is not None:
                print("FAIL: campaign finished before it could be "
                      "killed; raise BUDGET", file=sys.stderr)
                return 1
            if time.monotonic() > deadline:
                victim.kill()
                print("FAIL: no committed runs within the deadline",
                      file=sys.stderr)
                return 1
            time.sleep(0.1)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        survived = committed_runs(journal)
        print(f"killed campaign after {survived} committed runs")

        result = subprocess.run(fuzz_argv(journal), capture_output=True,
                                text=True, timeout=600)
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
        if result.returncode != 0:
            print(f"FAIL: resumed campaign exited "
                  f"{result.returncode}", file=sys.stderr)
            return 1
        if "runs resumed from journal" not in result.stdout:
            print("FAIL: resumed campaign did not replay the journal",
                  file=sys.stderr)
            return 1
        if f"{expected_runs} runs" not in result.stdout:
            print(f"FAIL: expected {expected_runs} total runs in the "
                  f"resumed report", file=sys.stderr)
            return 1
        if committed_runs(journal) != expected_runs:
            print("FAIL: journal does not hold every run", file=sys.stderr)
            return 1
        if not journal.with_name(
                journal.name + ".checkpoint.json").exists():
            print("FAIL: checkpoint summary missing", file=sys.stderr)
            return 1
    print(f"OK: campaign killed at {survived}/{expected_runs} runs, "
          f"resumed to a clean finish")
    return 0


if __name__ == "__main__":
    sys.exit(main())
