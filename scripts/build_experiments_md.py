#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from the archived benchmark tables.

Every benchmark under ``benchmarks/`` writes its paper-versus-measured
table to ``results/<name>.txt``; this script stitches them into
EXPERIMENTS.md together with the per-figure commentary, so the document
always reflects the most recent ``pytest benchmarks/ --benchmark-only``
run.

Usage:  python scripts/build_experiments_md.py
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

PREAMBLE = """\
# EXPERIMENTS — paper versus measured

Reproduction results for every table and figure in the evaluation of
*Zero Directory Eviction Victim* (HPCA 2021). Each section shows the
archived output of the corresponding benchmark
(`pytest benchmarks/ --benchmark-only`); the `paper` column carries the
value the paper states, where it states one. Absolute numbers are not
expected to match (the substrate here is a trace-driven simulator over
synthetic traces, not Multi2Sim over real binaries — see DESIGN.md §2);
the assessments below grade the *shape*: who wins, the direction of every
trend, and where crossovers fall.

**Scale of the archived run:** 8-core socket with capacities divided by
`REPRO_SCALE` (default 16, preserving all associativities and capacity
ratios), `REPRO_ACCESSES` accesses per core, representative application
subsets that always include the applications the paper names. The same
benchmarks accept `REPRO_FULL=1` / `REPRO_SCALE=1` for full-size runs.

## Verdict summary

| Experiment | Paper's claim | Reproduced? |
|---|---|---|
| §III-C2 anchors | shared-entry fractions: SPLASH2X 19% > PARSEC 10% ≈ CPU2017 9% ≫ SPEC OMP 0.5% ≈ FFTW 0 | **ordering yes** — same ranking; magnitudes within ~2–3× (synthetic traces under-populate shared entries) |
| Fig 2 | 1x ≈ unbounded for rate workloads (<1% speedup; ~10% traffic and ~15% misses saved) | **yes** — avg speedup ~1.01, traffic −18%, misses −12% |
| Fig 3 | 1x adequate for multi-threaded suites | **yes** — suite averages within ~1–2%; the freqmine *inversion* (unbounded 4% slower) does not reproduce (our migratory copies get naturally written back before readers arrive, so both systems serve readers from the LLC) |
| Fig 4 | gradual decline with directory size | **yes** — monotone and gradual (½× ≈ 0.97–0.99, ⅛× ≈ 0.80–0.88, 1/32× ≈ 0.61–0.79, inside the paper's 0.6–1.0 axis range) |
| Fig 5 | spilled entries need ≤12% of LLC blocks | **yes** — maxima in the same low range |
| Fig 6 | −2 LLC ways ≈ −3% avg; worst cases vips −14%, lu_ncb −9%, 330.art −6%, gcc.ppO2 −5% | **yes** — the named applications reproduce their sensitivities (vips −8%, lu_ncb −7%, 330.art −5%, gcc.ppO2 −1% at 14 ways; −17/−16/−10/−4% at 12) |
| Fig 12 | SpillAll: max LLC overhead + extra array read; FPSS: overhead only; FuseAll: min overhead + extra hop | **yes** — all three axes measured, same placement of each policy |
| Fig 17 | SpillAll worst; FPSS best minimum; FuseAll pays 3-hop shared reads | **yes** — same ordering |
| Fig 18 | dataLRU ≥ spLRU everywhere, gap widens at half LLC | **yes** |
| Fig 19–21 | ZeroDEV within 1–2% of baseline at 1x, 1/8x, **NoDir** | **yes** — within ~1% everywhere, and **zero DEVs asserted** |
| §III-D3 | <0.5% of DRAM writes from entry eviction; <0.05% of LLC read misses hit corrupted blocks | **yes** — both ≈0 at this scale (dataLRU keeps entries resident) |
| Fig 22 | 2x LLC: NoDir within 1%; half LLC needs a 1/4x directory | **yes** |
| Fig 23 | heterogeneous mixes: ≤2% worst, ≤1% average | **yes** |
| Fig 24 | server socket: ≤1.4% worst (SPECWeb-S), <1% average | **yes** (32-core default; 128-core with REPRO_FULL=1) |
| Fig 25 | EPD: ZeroDEV needs a small directory (no fusion); inclusive: no entry ever leaves the LLC, ~95% of forced invalidations eliminated | **yes** — wb_de == 0 asserted for inclusive; forced-invalidation elimination measured |
| Fig 26 | MgD 1/8x ≈ baseline 1x, degrading below; ZeroDEV flat, gap widens | **shape yes** — monotone MgD decline, ZeroDEV flat; our MgD at 1/8x sits a few percent lower than the paper's (less region coverage in synthetic traces) |
| Fig 27 | SecDir degrades with size (fragmentation); ZeroDEV insensitive | **yes** |
| §V energy | ~9% directory+LLC energy saved by NoDir ZeroDEV | **yes** — ~9% with CACTI-flavoured constants (calibrated stand-ins) |
| §V multi-socket | 4 sockets: ZeroDEV-NoDir within 1.6% | **yes** — within ~2%, all Section III-D flows exercised, zero DEVs |
| Ablations | replacement-disabled directory strictly simpler/better; E-notice bits negligible; dir-backing solutions equivalent for coherence | **yes** |

The strongest reproduction statement is not a number: the property-based
test-suite proves, for random traces on every protocol/LLC-design
combination, that ZeroDEV **never** delivers a directory-eviction
invalidation to a core cache while maintaining full data correctness
(every load observes the latest committed store, checked against a shadow
memory on every read).
"""

SECTIONS = [
    ("calibration_anchors",
     "Section III-C2 — shared-entry-fraction calibration anchors"),
    ("fig02", "Figure 2 — unbounded vs 1x directory (rate workloads)"),
    ("fig03", "Figure 3 — unbounded vs 1x directory (multi-threaded)"),
    ("fig04", "Figure 4 — directory-size sensitivity of the baseline"),
    ("fig05", "Figure 5 — projected LLC occupancy of spilled entries"),
    ("fig06", "Figure 6 — reduced LLC associativity"),
    ("fig12", "Figure 12 — the directory-caching design space, "
              "quantified"),
    ("fig17", "Figure 17 — directory-entry caching policies"),
    ("fig18", "Figure 18 — spLRU vs dataLRU"),
    ("fig19", "Figure 19 — ZeroDEV on PARSEC"),
    ("fig20", "Figure 20 — ZeroDEV on SPLASH2X / SPEC OMP / FFTW"),
    ("fig21", "Figure 21 — ZeroDEV on SPEC CPU2017 rate"),
    ("fig22", "Figure 22 — LLC capacity sensitivity"),
    ("fig23", "Figure 23 — heterogeneous multi-programmed mixes"),
    ("fig24", "Figure 24 — server workloads"),
    ("fig25", "Figure 25 — EPD and inclusive LLCs"),
    ("fig26", "Figure 26 — Multi-grain Directory comparison"),
    ("fig27", "Figure 27 — SecDir comparison"),
    ("fig_contenders",
     "Contender study — DLS and hybrid update/invalidate"),
    ("energy", "Section V — energy expense"),
    ("multisocket", "Section V — multi-socket evaluation"),
    ("ablation_replacement",
     "Ablation — replacement-disabled sparse directory (Section III-C4)"),
    ("ablation_notice_bits",
     "Ablation — E-state notice bit overhead (Section III-C2)"),
    ("ablation_socket_dir",
     "Ablation — socket-directory backing solutions (Section III-D5)"),
]


def main() -> int:
    parts = [PREAMBLE]
    missing = []
    for name, title in SECTIONS:
        path = RESULTS / f"{name}.txt"
        parts.append(f"\n## {title}\n")
        if path.exists():
            parts.append("```text\n" + path.read_text().rstrip()
                         + "\n```\n")
        else:
            missing.append(name)
            parts.append("*(no archived result — run "
                         "`pytest benchmarks/ --benchmark-only`)*\n")
    (ROOT / "EXPERIMENTS.md").write_text("".join(parts))
    print(f"wrote EXPERIMENTS.md ({len(SECTIONS) - len(missing)} of "
          f"{len(SECTIONS)} sections with archived results)")
    if missing:
        print("missing:", ", ".join(missing))
    return 0


if __name__ == "__main__":
    sys.exit(main())
