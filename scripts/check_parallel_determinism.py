#!/usr/bin/env python
"""CI smoke: jobs=1, jobs=2, kernel=scalar, kernel=vectorized agree.

Runs a small fig17-style batch (baseline + ZeroDEV over two workloads)
serially and through the multiprocessing pool, with caching disabled so
both paths actually simulate, and fails loudly on the first divergent
stat. The same batch is then re-run under the scalar and vectorized
access kernels, both of which must be bit-identical to the default
batched kernel (the repro.kernel contract). The simulator is
deterministic, so any difference is a harness or kernel bug
(scheduling, pickling, result-ordering, run-ahead retirement, or
columnar reconstruction), not noise.
"""

from __future__ import annotations

import sys

from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCReplacement,
                                 Protocol, SystemConfig)
from repro.harness.parallel import run_many
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile


def tiny(**overrides) -> SystemConfig:
    base = dict(
        n_cores=4,
        l1i=CacheGeometry(512, 2), l1d=CacheGeometry(512, 2),
        l2=CacheGeometry(2048, 4), llc=CacheGeometry(8192, 4),
        llc_banks=2,
    )
    base.update(overrides)
    return SystemConfig(**base)


def main() -> int:
    zerodev = tiny(protocol=Protocol.ZERODEV,
                   directory=DirectoryConfig(ratio=None),
                   llc_replacement=LLCReplacement.DATA_LRU,
                   dir_caching=DirCachingPolicy.FPSS)
    workloads = [make_multithreaded(find_profile(name), tiny(), 600,
                                    seed=13)
                 for name in ("blackscholes", "canneal")]
    specs = [(config, workload) for config in (tiny(), zerodev)
             for workload in workloads]

    serial = run_many(specs, jobs=1, cache=None)
    parallel = run_many(specs, jobs=2, cache=None)
    scalar = run_many([(config.with_(kernel="scalar"), workload)
                       for config, workload in specs],
                      jobs=1, cache=None)
    vectorized = run_many([(config.with_(kernel="vectorized"), workload)
                           for config, workload in specs],
                          jobs=1, cache=None)

    for label, other in (("jobs=2", parallel),
                         ("kernel=scalar", scalar),
                         ("kernel=vectorized", vectorized)):
        for index, (a, b) in enumerate(zip(serial, other)):
            if a.stats.as_dict() != b.stats.as_dict():
                print(f"FAIL: spec {index} ({a.workload}) diverged "
                      f"between jobs=1 and {label}", file=sys.stderr)
                left, right = a.stats.as_dict(), b.stats.as_dict()
                for key in left:
                    if left[key] != right.get(key):
                        print(f"  {key}: serial={left[key]} "
                              f"{label}={right.get(key)}",
                              file=sys.stderr)
                return 1
    print(f"OK: {len(specs)} runs bit-identical between jobs=1, "
          f"jobs=2, and the scalar and vectorized kernels")
    return 0


if __name__ == "__main__":
    sys.exit(main())
